#include "kr/kr_aptas.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "gen/rect_gen.hpp"
#include "packers/shelf.hpp"
#include "release/config_lp.hpp"
#include "test_support.hpp"

namespace stripack::kr {
namespace {

Instance instance_of(const std::vector<Rect>& rects) {
  std::vector<Item> items;
  for (const Rect& r : rects) items.push_back(Item{r, 0.0});
  return Instance(std::move(items));
}

TEST(Kr, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(kr_pack(Instance{}).height, 0.0);
  const Instance one = instance_of({{0.5, 0.8}});
  const KrResult result = kr_pack(one);
  EXPECT_TRUE(testing::placement_valid(one, result.packing.placement));
  EXPECT_NEAR(result.height, 0.8, 1e-9);
}

TEST(Kr, AllNarrowFallsBackToShelves) {
  // Every width below delta: the whole instance goes through the narrow
  // path (no LP at all).
  std::vector<Rect> rects;
  for (int i = 0; i < 30; ++i) rects.push_back(Rect{0.03, 0.5});
  const Instance ins = instance_of(rects);
  KrParams params;
  params.epsilon = 0.5;  // delta = 0.25
  const KrResult result = kr_pack(ins, params);
  EXPECT_EQ(result.stats.wide_items, 0u);
  EXPECT_TRUE(testing::placement_valid(ins, result.packing.placement));
  // 30 * 0.03 = 0.9 of width: everything fits in one 0.5-high shelf.
  EXPECT_NEAR(result.height, 0.5, 1e-9);
}

TEST(Kr, AllWideUsesLpOnly) {
  const Instance ins = instance_of({{0.6, 1.0}, {0.6, 1.0}, {0.4, 1.0}});
  KrParams params;
  params.epsilon = 0.5;
  const KrResult result = kr_pack(ins, params);
  EXPECT_EQ(result.stats.narrow_items, 0u);
  EXPECT_TRUE(testing::placement_valid(ins, result.packing.placement));
}

TEST(Kr, NarrowItemsFillMargins) {
  // One wide column (0.6) leaves a 0.4 margin that narrow items (0.1)
  // should occupy instead of stacking on top.
  std::vector<Rect> rects{{0.6, 1.0}};
  for (int i = 0; i < 8; ++i) rects.push_back(Rect{0.1, 0.5});
  const Instance ins = instance_of(rects);
  KrParams params;
  params.epsilon = 0.5;
  const KrResult result = kr_pack(ins, params);
  EXPECT_TRUE(testing::placement_valid(ins, result.packing.placement));
  EXPECT_GT(result.stats.narrow_in_margins, 0u);
  // 8 * 0.1 * 0.5 = 0.4 narrow area fits beside the wide column:
  // height stays 1.0.
  EXPECT_NEAR(result.height, 1.0, 1e-9);
}

TEST(Kr, RejectsConstrainedInstances) {
  Instance prec;
  const VertexId a = prec.add_item(0.5, 1.0);
  const VertexId b = prec.add_item(0.5, 1.0);
  prec.add_precedence(a, b);
  EXPECT_THROW(kr_pack(prec), ContractViolation);

  Instance released;
  released.add_item(0.5, 1.0, 1.0);
  EXPECT_THROW(kr_pack(released), ContractViolation);
}

TEST(Kr, HandlesWidthsBelowOneOverK) {
  // The §3 APTAS requires widths >= 1/K; KR does not. Mix very narrow
  // items with wide ones.
  Rng rng(3);
  std::vector<Rect> rects;
  for (int i = 0; i < 40; ++i) {
    rects.push_back(Rect{rng.uniform(0.005, 1.0), rng.uniform(0.05, 1.0)});
  }
  const Instance ins = instance_of(rects);
  const KrResult result = kr_pack(ins);
  EXPECT_TRUE(testing::placement_valid(ins, result.packing.placement));
}

struct KrSweep {
  std::uint64_t seed;
  double epsilon;
  std::size_t n;
};

class KrSweepTest : public ::testing::TestWithParam<KrSweep> {};

TEST_P(KrSweepTest, ValidAndCompetitive) {
  const KrSweep& sweep = GetParam();
  Rng rng(sweep.seed);
  gen::RectParams params;
  params.min_width = 0.01;
  params.min_height = 0.02;
  const auto rects = gen::random_rects(sweep.n, params, rng);
  const Instance ins = instance_of(rects);

  KrParams kr_params;
  kr_params.epsilon = sweep.epsilon;
  const KrResult result = kr_pack(ins, kr_params);
  ASSERT_TRUE(testing::placement_valid(ins, result.packing.placement))
      << "seed=" << sweep.seed;

  // Sanity: never below the area bound, never catastrophically above NFDH.
  EXPECT_GE(result.height, area_lower_bound(ins) - 1e-7);
  std::vector<Rect> copy(rects.begin(), rects.end());
  const double nfdh = make_nfdh().pack(copy, 1.0).height;
  EXPECT_LE(result.height, 2.0 * nfdh + 1.0);
}

std::vector<KrSweep> kr_sweeps() {
  return {
      {1u, 1.0, 60}, {2u, 0.5, 60},  {3u, 0.5, 150},
      {4u, 0.4, 80}, {5u, 1.0, 200}, {6u, 0.6, 120},
  };
}

INSTANTIATE_TEST_SUITE_P(Random, KrSweepTest, ::testing::ValuesIn(kr_sweeps()));

TEST(Kr, AsymptoticallyBeatsNfdhOnBigInstances) {
  // On large instances with many wide items the LP packing should beat the
  // plain shelf heuristic.
  Rng rng(11);
  gen::RectParams params;
  params.min_width = 0.15;
  params.max_width = 0.8;
  params.min_height = 0.05;
  params.max_height = 0.6;
  auto rects = gen::random_rects(400, params, rng);
  // Quantize widths to a 0.05 grid so the exact fractional LP below stays
  // small (14 distinct widths).
  for (Rect& r : rects) r.width = std::ceil(r.width * 20.0) / 20.0;
  const Instance ins = instance_of(rects);
  KrParams kr_params;
  kr_params.epsilon = 0.5;
  const KrResult kr = kr_pack(ins, kr_params);
  ASSERT_TRUE(testing::placement_valid(ins, kr.packing.placement));
  std::vector<Rect> copy(rects.begin(), rects.end());
  const double nfdh = make_nfdh().pack(copy, 1.0).height;
  EXPECT_LT(kr.height, nfdh);
  // And it tracks the certified fractional lower bound reasonably.
  const double lb = release::fractional_lower_bound(ins);
  EXPECT_LT(kr.height / lb, 1.6);
}

}  // namespace
}  // namespace stripack::kr
