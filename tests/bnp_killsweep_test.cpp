// Randomized kill sweep for the branch-and-price anytime contract
// (bnp/solver.hpp): whatever interrupts the search — a wall-clock
// deadline tripping mid-LP, a stop token injected at a random pivot, a
// caller-side cancellation, or faults racing the kill — every exit must
// carry the best incumbent, a still-valid dual bound
// (dual_bound <= optimum <= height), a feasible realized packing, and a
// documented status. Deterministic kills (TripStop plans) must also
// replay bit-identically.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "bnp/solver.hpp"
#include "core/validate.hpp"
#include "gen/hard_integral.hpp"
#include "test_support.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace stripack::bnp {
namespace {

constexpr double kTol = 1e-6;

struct Workload {
  gen::HardIntegralInstance family;
  std::string tag;
};

std::vector<Workload> workloads() {
  std::vector<Workload> out;
  out.push_back({gen::hard_integral_family(2), "k2"});
  out.push_back({gen::hard_integral_family(2, 3, 4.0), "k2-released"});
  return out;
}

void expect_contract(const Workload& w, const BnpResult& result,
                     const std::string& tag) {
  const double optimum = w.family.certificate.ip_height;
  EXPECT_TRUE(result.status == BnpStatus::Optimal ||
              result.status == BnpStatus::NodeLimit ||
              result.status == BnpStatus::TimeLimit ||
              result.status == BnpStatus::Stalled)
      << tag;
  // The bracket must sandwich the known certified optimum.
  EXPECT_LE(result.dual_bound, optimum + kTol) << tag;
  EXPECT_GE(result.height, optimum - kTol) << tag;
  EXPECT_LE(result.dual_bound, result.height + kTol) << tag;
  if (result.status == BnpStatus::Optimal) {
    EXPECT_NEAR(result.height, optimum, kTol) << tag;
  }
  // The incumbent is always realized as a feasible packing.
  EXPECT_TRUE(
      testing::placement_valid(w.family.instance, result.packing.placement))
      << tag;
}

// Wall-clock deadlines from "expires before the first pivot" to "never
// bites": every rung of the sweep must exit cleanly with a valid bracket,
// and the generous end must still certify the optimum (the sweep is not
// vacuous).
TEST(BnpKillSweep, DeadlineSweepKeepsContract) {
  for (const Workload& w : workloads()) {
    for (const double deadline : {1e-9, 1e-6, 1e-4, 1e-3, 1e-2, 30.0}) {
      BnpOptions options;
      options.budget.max_seconds = deadline;
      const BnpResult result = solve(w.family.instance, options);
      expect_contract(w, result,
                      w.tag + " deadline " + std::to_string(deadline));
      if (deadline >= 30.0) {
        EXPECT_EQ(result.status, BnpStatus::Optimal) << w.tag;
      }
    }
  }
}

// Deterministic randomized kills: a stop token tripped at a random pivot
// count (drawn from a seeded Rng) — the reproducible stand-in for "the
// deadline expired at an arbitrary instant". Each kill must keep the
// contract AND replay to the bit-identical result.
TEST(BnpKillSweep, RandomPivotKillsAreHonestAndReproducible) {
  for (const Workload& w : workloads()) {
    Rng rng(99);
    for (int trial = 0; trial < 12; ++trial) {
      FaultPlan plan;
      plan.events.push_back(
          {FaultSite::Pivot,
           static_cast<std::uint64_t>(rng.uniform_int(1, 300)),
           FaultAction::TripStop, 0.0});
      auto run = [&](bool colgen) -> BnpResult {
        FaultInjector injector(plan);
        BnpOptions options;
        options.lp.use_column_generation = colgen;
        options.lp.fault = &injector;
        return solve(w.family.instance, options);
      };
      for (const bool colgen : {false, true}) {
        const std::string tag = w.tag + " trial " + std::to_string(trial) +
                                " colgen " + std::to_string(colgen);
        const BnpResult a = run(colgen);
        expect_contract(w, a, tag);
        const BnpResult b = run(colgen);
        EXPECT_EQ(a.status, b.status) << tag;
        EXPECT_EQ(a.height, b.height) << tag;
        EXPECT_EQ(a.dual_bound, b.dual_bound) << tag;
        EXPECT_EQ(a.nodes, b.nodes) << tag;
      }
    }
  }
}

// A caller whose own stop token is already tripped when solve() starts:
// the watchdog must propagate it, and the result is still a full
// contract-keeping bracket (the trivial incumbent at the very least).
TEST(BnpKillSweep, PreTrippedCallerStopExitsCleanly) {
  for (const Workload& w : workloads()) {
    std::atomic<bool> cancelled{true};
    BnpOptions options;
    options.budget.max_seconds = 3600.0;  // the watchdog, not the deadline
    options.lp.stop = &cancelled;
    const BnpResult result = solve(w.family.instance, options);
    expect_contract(w, result, w.tag + " pre-tripped stop");
  }
}

// Kills racing injected faults in batch-parallel mode: stop tokens,
// throws and bad pivots land while worker clones evaluate nodes. Statuses
// may vary run to run (wall-clock free, but the fault counters interleave
// across threads) — the contract may not.
TEST(BnpKillSweep, ParallelKillsWithFaultsKeepContract) {
  for (const Workload& w : workloads()) {
    for (int seed = 1; seed <= 6; ++seed) {
      const FaultPlan plan = FaultPlan::random(
          static_cast<std::uint64_t>(7000 + seed), 5, 200);
      FaultInjector injector(plan);
      BnpOptions options;
      options.lp.use_column_generation = true;
      options.lp.fault = &injector;
      options.threads = 2;
      options.node_batch = 4;
      const BnpResult result = solve(w.family.instance, options);
      expect_contract(w, result,
                      w.tag + " parallel seed " + std::to_string(seed));
    }
  }
}

}  // namespace
}  // namespace stripack::bnp
