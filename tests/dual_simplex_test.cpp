// Dual-simplex regression suite: adding cut rows (or tightening rhs) to a
// solved model and re-solving with `SimplexEngine::solve_dual()` must
// reproduce a cold solve of the grown model — without ever re-running
// phase 1 — and the documented fallback/infeasibility statuses must hold.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/colgen.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "lp_test_support.hpp"
#include "util/rng.hpp"

namespace stripack::lp {
namespace {

constexpr double kTol = 1e-6;

// min x + y s.t. x + 2y >= 4, 3x + y >= 6 => (1.6, 1.2), objective 2.8.
Model covering_model() {
  Model m;
  const int r1 = m.add_row(Sense::GE, 4);
  const int r2 = m.add_row(Sense::GE, 6);
  const RowEntry x_entries[] = {{r1, 1.0}, {r2, 3.0}};
  const RowEntry y_entries[] = {{r1, 2.0}, {r2, 1.0}};
  m.add_column(1.0, x_entries, "x");
  m.add_column(1.0, y_entries, "y");
  return m;
}

TEST(DualSimplex, ViolatedCutRowResolvesToTheColdOptimum) {
  Model m = covering_model();
  SimplexEngine engine(m);
  const Solution first = engine.solve();
  ASSERT_TRUE(first.optimal());
  EXPECT_NEAR(first.objective, 2.8, kTol);

  // x + y >= 4 cuts off (1.6, 1.2): the dual re-solve must move to the
  // new optimum (cross-checked against a cold solve) with no phase 1.
  const ColumnEntry cut[] = {{0, 1.0}, {1, 1.0}};
  m.add_row_with_entries(Sense::GE, 4.0, cut, "cut");
  engine.sync_rows();
  const Solution resolved = engine.solve_dual();
  certify_optimal_solution(m, resolved);
  const Solution cold = solve(m);
  ASSERT_TRUE(cold.optimal());
  EXPECT_NEAR(resolved.objective, cold.objective, kTol);
  EXPECT_GE(resolved.objective, first.objective - kTol);  // cuts never help
  EXPECT_EQ(resolved.phase1_iterations, 0);
  EXPECT_GT(resolved.dual_iterations, 0);
}

TEST(DualSimplex, SatisfiedRowIsFreeToAdd) {
  Model m = covering_model();
  SimplexEngine engine(m);
  const Solution first = engine.solve();
  ASSERT_TRUE(first.optimal());

  // x + y <= 10 holds comfortably at (1.6, 1.2): zero pivots of any kind.
  const ColumnEntry loose[] = {{0, 1.0}, {1, 1.0}};
  m.add_row_with_entries(Sense::LE, 10.0, loose, "loose");
  engine.sync_rows();
  const Solution resolved = engine.solve_dual();
  certify_optimal_solution(m, resolved);
  EXPECT_NEAR(resolved.objective, first.objective, kTol);
  EXPECT_EQ(resolved.phase1_iterations, 0);
  EXPECT_EQ(resolved.dual_iterations, 0);
  EXPECT_EQ(resolved.iterations, 0);
}

TEST(DualSimplex, InfeasibleCutReturnsInfeasible) {
  Model m = covering_model();
  SimplexEngine engine(m);
  ASSERT_TRUE(engine.solve().optimal());

  // x + y <= 1 contradicts x + 2y >= 4: the dual ratio test finds no
  // entering column for the violated row — a Farkas certificate — and the
  // documented status is Infeasible (matching a cold solve).
  const ColumnEntry cut[] = {{0, 1.0}, {1, 1.0}};
  m.add_row_with_entries(Sense::LE, 1.0, cut, "impossible");
  engine.sync_rows();
  const Solution resolved = engine.solve_dual();
  EXPECT_EQ(resolved.status, SolveStatus::Infeasible);
  EXPECT_EQ(solve(m).status, SolveStatus::Infeasible);
  EXPECT_EQ(resolved.phase1_iterations, 0);
}

TEST(DualSimplex, NegativeResidualEqualityRowIsHandledDually) {
  Model m = covering_model();
  SimplexEngine engine(m);
  const Solution first = engine.solve();
  ASSERT_TRUE(first.optimal());

  // x + y = 2 with activity 2.8: negative residual in transformed space,
  // so the basic artificial starts negative and the dual simplex drives
  // it out (no phase 1).
  const ColumnEntry cut[] = {{0, 1.0}, {1, 1.0}};
  m.add_row_with_entries(Sense::EQ, 2.0, cut, "eq");
  engine.sync_rows();
  const Solution resolved = engine.solve_dual();
  const Solution cold = solve(m);
  ASSERT_EQ(resolved.status, cold.status);
  if (cold.optimal()) {
    certify_optimal_solution(m, resolved);
    EXPECT_NEAR(resolved.objective, cold.objective, kTol);
  }
  EXPECT_EQ(resolved.phase1_iterations, 0);
}

TEST(DualSimplex, PositiveResidualEqualityRowFallsBackToPrimal) {
  Model m = covering_model();
  SimplexEngine engine(m);
  const Solution first = engine.solve();
  ASSERT_TRUE(first.optimal());

  // x + y = 4 with activity 2.8: positive residual — outside dual reach
  // per the documented contract, so solve_dual falls back to a primal
  // solve (phase 1 allowed) and still lands on the cold optimum.
  const ColumnEntry cut[] = {{0, 1.0}, {1, 1.0}};
  m.add_row_with_entries(Sense::EQ, 4.0, cut, "eq");
  engine.sync_rows();
  const Solution resolved = engine.solve_dual();
  const Solution cold = solve(m);
  ASSERT_EQ(resolved.status, cold.status);
  ASSERT_TRUE(cold.optimal());
  certify_optimal_solution(m, resolved);
  EXPECT_NEAR(resolved.objective, cold.objective, kTol);
  EXPECT_GT(resolved.phase1_iterations, 0);  // documented fallback
}

TEST(DualSimplex, MixedViolatedCutAndPositiveResidualEqualityRow) {
  // Regression: the positive-residual equality row routes solve_dual into
  // its primal fallback while the violated GE cut leaves a *slack* basic
  // at a negative value — which phase 1 does not repair. The fallback
  // must not clamp that into a bogus "optimal": it has to match the cold
  // solve (x = y = 2 here, not the infeasible (1, 3)).
  Model m = covering_model();
  SimplexEngine engine(m);
  ASSERT_TRUE(engine.solve().optimal());

  const ColumnEntry cut[] = {{0, 1.0}, {1, 1.0}};
  m.add_row_with_entries(Sense::GE, 4.0, cut, "cut");
  const ColumnEntry eq[] = {{0, -1.0}, {1, 1.0}};
  m.add_row_with_entries(Sense::EQ, 1.0, eq, "balance");  // y - x = 1
  engine.sync_rows();
  const Solution resolved = engine.solve_dual();
  const Solution cold = solve(m);
  ASSERT_EQ(resolved.status, cold.status);
  ASSERT_TRUE(cold.optimal());
  certify_optimal_solution(m, resolved);
  EXPECT_NEAR(resolved.objective, cold.objective, kTol);
  EXPECT_NEAR(resolved.x[0], 1.5, kTol);
  EXPECT_NEAR(resolved.x[1], 2.5, kTol);
}

TEST(DualSimplex, TightenedRhsReoptimizesWithoutPhase1) {
  // max 2x + y (as a minimum) with x + y <= 4, x <= 3, y <= 2: optimum
  // (3, 1). Tightening x <= 1 makes the retained basis primal infeasible
  // (sliding along x + y = 4 would need y = 3 > 2), so the dual simplex
  // must genuinely pivot to reach the new optimum (1, 2).
  Model m;
  const int r1 = m.add_row(Sense::LE, 4.0);
  const int r2 = m.add_row(Sense::LE, 3.0);
  const int r3 = m.add_row(Sense::LE, 2.0);
  const RowEntry x_entries[] = {{r1, 1.0}, {r2, 1.0}};
  const RowEntry y_entries[] = {{r1, 1.0}, {r3, 1.0}};
  m.add_column(-2.0, x_entries, "x");
  m.add_column(-1.0, y_entries, "y");
  SimplexEngine engine(m);
  const Solution first = engine.solve();
  ASSERT_TRUE(first.optimal());
  EXPECT_NEAR(first.objective, -7.0, kTol);  // (3, 1)

  m.set_row_rhs(r2, 1.0);
  engine.sync_rows();
  const Solution resolved = engine.solve_dual();
  certify_optimal_solution(m, resolved);
  const Solution cold = solve(m);
  ASSERT_TRUE(cold.optimal());
  EXPECT_NEAR(resolved.objective, cold.objective, kTol);
  EXPECT_NEAR(resolved.objective, -4.0, kTol);  // (1, 2)
  EXPECT_EQ(resolved.phase1_iterations, 0);
  EXPECT_GT(resolved.dual_iterations, 0);
}

TEST(DualSimplex, RhsSignFlipFallsBackGracefully) {
  // Loosening an LE rhs across zero flips the row's internal
  // normalization; the engine re-syncs and solve_dual's fallback path
  // still returns the cold optimum.
  Model m;
  const int r1 = m.add_row(Sense::LE, 2.0);
  const int r2 = m.add_row(Sense::GE, 1.0);
  const RowEntry x_entries[] = {{r1, -1.0}, {r2, 1.0}};
  m.add_column(1.0, x_entries, "x");
  SimplexEngine engine(m);
  const Solution first = engine.solve();
  ASSERT_TRUE(first.optimal());
  EXPECT_NEAR(first.objective, 1.0, kTol);

  m.set_row_rhs(r1, -3.0);  // -x <= -3, i.e. x >= 3
  engine.sync_rows();
  const Solution resolved = engine.solve_dual();
  const Solution cold = solve(m);
  ASSERT_EQ(resolved.status, cold.status);
  ASSERT_TRUE(cold.optimal());
  certify_optimal_solution(m, resolved);
  EXPECT_NEAR(resolved.objective, 3.0, kTol);
}

TEST(DualSimplex, UnsolvedEngineFallsBackToPrimal) {
  const Model m = covering_model();
  SimplexEngine engine(m);
  // solve_dual straight away: the cold slack/artificial basis is not dual
  // feasible, so the documented fallback runs a full primal solve.
  const Solution s = engine.solve_dual();
  certify_optimal_solution(m, s);
  EXPECT_NEAR(s.objective, 2.8, kTol);
}

// ------------------------------------------------------ randomized sweep
class DualSimplexRandom : public ::testing::TestWithParam<PricingRule> {};

TEST_P(DualSimplexRandom, RandomCutRowsMatchColdSolves) {
  SimplexOptions options;
  options.pricing = GetParam();
  int exercised = 0;
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    Rng rng(7000 + seed);
    Model m =
        random_covering_model(rng, static_cast<int>(rng.uniform_int(4, 12)),
                              static_cast<int>(rng.uniform_int(8, 40)));
    SimplexEngine engine(m, options);
    const Solution first = engine.solve();
    if (!first.optimal()) continue;
    ++exercised;

    // 1-3 cut rows, deliberately violated: each demands ~20% more than
    // the current activity over a random subset of columns.
    const auto activity_of = [&](const std::vector<ColumnEntry>& entries) {
      double a = 0.0;
      for (const ColumnEntry& e : entries) a += first.x[e.col] * e.coef;
      return a;
    };
    const int cuts = static_cast<int>(rng.uniform_int(1, 3));
    bool added_equality = false;
    for (int k = 0; k < cuts; ++k) {
      std::vector<ColumnEntry> entries;
      for (int c = 0; c < m.num_cols(); ++c) {
        if (rng.bernoulli(0.3)) entries.push_back({c, rng.uniform(0.5, 1.5)});
      }
      if (entries.empty()) entries.push_back({0, 1.0});
      // Mostly GE cuts (pure dual territory); sometimes an equality with
      // positive residual, which exercises the documented primal fallback
      // in combination with the violated rows.
      const bool eq = rng.bernoulli(0.25);
      added_equality |= eq;
      m.add_row_with_entries(eq ? Sense::EQ : Sense::GE,
                             activity_of(entries) * 1.2 + 0.5, entries);
    }
    engine.sync_rows();
    const Solution resolved = engine.solve_dual();
    const Solution cold = solve(m, options);
    ASSERT_EQ(resolved.status, cold.status) << "seed=" << seed;
    // Inequality-only cut sets stay entirely inside the dual simplex.
    if (!added_equality) {
      EXPECT_EQ(resolved.phase1_iterations, 0) << "seed=" << seed;
    }
    if (!cold.optimal()) continue;
    certify_optimal_solution(m, resolved);
    EXPECT_NEAR(resolved.objective, cold.objective,
                1e-6 * (1.0 + std::fabs(cold.objective)))
        << "seed=" << seed;
  }
  EXPECT_GT(exercised, 60);
}

INSTANTIATE_TEST_SUITE_P(AllPricingRules, DualSimplexRandom,
                         ::testing::Values(PricingRule::Dantzig,
                                           PricingRule::Bland,
                                           PricingRule::SteepestEdge),
                         [](const ::testing::TestParamInfo<PricingRule>& i) {
                           switch (i.param) {
                             case PricingRule::Dantzig:
                               return "Dantzig";
                             case PricingRule::Bland:
                               return "Bland";
                             default:
                               return "SteepestEdge";
                           }
                         });

// ----------------------------------------------- branch-and-price shape
namespace {

// Cutting-stock oracle that prices against *all* duals, including cut
// rows appended after the first colgen run: each pattern column carries
// coefficient 1 in every `pattern_count_rows` row (sum of pattern uses).
class CutAwarePatternOracle final : public PricingOracle {
 public:
  CutAwarePatternOracle(std::vector<double> widths, double capacity,
                        std::vector<int>* pattern_count_rows)
      : widths_(std::move(widths)),
        capacity_(capacity),
        pattern_count_rows_(pattern_count_rows) {}

  std::vector<PricedColumn> price(std::span<const double> duals,
                                  double tol) override {
    std::vector<int> counts(widths_.size(), 0);
    std::vector<PricedColumn> best;
    double base_cost = 1.0;
    for (const int row : *pattern_count_rows_) base_cost -= duals[row];
    double best_rc = -std::max(tol, 1e-9);
    enumerate(0, 0.0, base_cost, counts, duals, best, best_rc);
    return best;
  }

 private:
  void enumerate(std::size_t i, double used, double base_cost,
                 std::vector<int>& counts, std::span<const double> duals,
                 std::vector<PricedColumn>& best, double& best_rc) {
    if (i == widths_.size()) {
      double rc = base_cost;
      bool any = false;
      for (std::size_t k = 0; k < counts.size(); ++k) {
        rc -= duals[k] * counts[k];
        any |= counts[k] > 0;
      }
      if (any && rc < best_rc) {
        best_rc = rc;
        PricedColumn col;
        col.cost = 1.0;
        for (std::size_t k = 0; k < counts.size(); ++k) {
          if (counts[k] > 0) {
            col.entries.push_back(
                {static_cast<int>(k), static_cast<double>(counts[k])});
          }
        }
        for (const int row : *pattern_count_rows_) {
          col.entries.push_back({row, 1.0});
        }
        best.assign(1, col);
      }
      return;
    }
    const int max_c = static_cast<int>((capacity_ - used) / widths_[i] + 1e-9);
    for (int c = 0; c <= max_c; ++c) {
      counts[i] = c;
      enumerate(i + 1, used + c * widths_[i], base_cost, counts, duals, best,
                best_rc);
    }
    counts[i] = 0;
  }

  std::vector<double> widths_;
  double capacity_;
  std::vector<int>* pattern_count_rows_;
};

}  // namespace

TEST(ColgenDual, CutRowThenWarmColgenContinuation) {
  // The branch-and-price loop end to end: colgen-solve the cutting-stock
  // master, add a violated "at least 18 patterns" cover cut, dual
  // re-solve from the previous basis, then keep pricing against the cut
  // dual — all on one engine, with phase 1 never running again.
  const std::vector<double> widths{3.0, 4.0, 5.0};
  const std::vector<double> demand{20.0, 10.0, 5.0};
  const double capacity = 9.0;

  Model master;
  for (double d : demand) master.add_row(Sense::GE, d);
  for (std::size_t k = 0; k < widths.size(); ++k) {
    const RowEntry e[] = {{static_cast<int>(k), 1.0}};
    master.add_column(1.0, e);
  }
  std::vector<int> cut_rows;
  CutAwarePatternOracle oracle(widths, capacity, &cut_rows);
  SimplexOptions options;
  SimplexEngine engine(master, options);
  const ColgenResult base =
      solve_with_column_generation(master, oracle, engine, options.tol);
  ASSERT_TRUE(base.solution.optimal());
  // 85/6: 20/3 x {3,0,0} + 5 x {0,1,1} + 5/2 x {0,2,0}.
  EXPECT_NEAR(base.solution.objective, 85.0 / 6.0, 1e-6);

  // Branch row: at least 18 patterns in total — violated by the
  // fractional optimum 85/6 ~ 14.17, and exactly the shape a
  // branch-and-price node adds.
  std::vector<ColumnEntry> entries;
  for (int c = 0; c < master.num_cols(); ++c) entries.push_back({c, 1.0});
  const int cut_row =
      master.add_row_with_entries(Sense::GE, 18.0, entries, "cover");
  cut_rows.push_back(cut_row);
  engine.sync_rows();
  const Solution dual_sol = engine.solve_dual();
  ASSERT_TRUE(dual_sol.optimal());
  EXPECT_EQ(dual_sol.phase1_iterations, 0);
  EXPECT_GT(dual_sol.dual_iterations, 0);
  EXPECT_GE(dual_sol.objective, 18.0 - 1e-6);  // the cut binds

  // Continue pricing against the cut dual on the same engine: still no
  // phase 1 anywhere, and the result matches a cold colgen run on a
  // master that had the cut from the start.
  const ColgenResult continued =
      solve_with_column_generation(master, oracle, engine, options.tol);
  ASSERT_TRUE(continued.solution.optimal());
  EXPECT_EQ(continued.cold_phase1_iterations, 0);
  EXPECT_EQ(continued.warm_phase1_iterations, 0);
  certify_optimal_solution(master, continued.solution);

  Model fresh;
  for (double d : demand) fresh.add_row(Sense::GE, d);
  fresh.add_row(Sense::GE, 18.0, "cover");
  std::vector<int> fresh_cut_rows{3};
  for (std::size_t k = 0; k < widths.size(); ++k) {
    const RowEntry e[] = {{static_cast<int>(k), 1.0}, {3, 1.0}};
    fresh.add_column(1.0, e);
  }
  CutAwarePatternOracle fresh_oracle(widths, capacity, &fresh_cut_rows);
  const ColgenResult cold =
      solve_with_column_generation(fresh, fresh_oracle, options);
  ASSERT_TRUE(cold.solution.optimal());
  EXPECT_NEAR(continued.solution.objective, cold.solution.objective, 1e-6);
}

}  // namespace
}  // namespace stripack::lp
