// Branch-and-price solver mechanics: certified optima on gap families,
// warm-path invariants, budgets, node tree determinism, and the packer
// adapter. Cross-validation against the other exact solvers lives in
// bnp_exact_cross_test.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bnp/node_tree.hpp"
#include "bnp/solver.hpp"
#include "core/validate.hpp"
#include "gen/hard_integral.hpp"
#include "packers/registry.hpp"
#include "release/config_lp.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace stripack::bnp {
namespace {

constexpr double kTol = 1e-6;

Instance integer_instance(
    std::initializer_list<std::tuple<double, double, double>> items) {
  std::vector<Item> out;
  for (const auto& [w, h, r] : items) out.push_back(Item{Rect{w, h}, r});
  return Instance(std::move(out));
}

TEST(NodeTree, BestFirstWithFifoTies) {
  NodeTree tree;
  tree.add_root(5.0);
  ASSERT_EQ(tree.pop_best(), 0);
  BranchDecision d;  // contents irrelevant here
  const int a = tree.add_child(0, d, 7.0);
  const int b = tree.add_child(0, d, 6.0);
  const int c = tree.add_child(0, d, 7.0);
  EXPECT_EQ(tree.pop_best(), b);
  // Equal bounds pop in creation order.
  EXPECT_EQ(tree.pop_best(), a);
  EXPECT_EQ(tree.pop_best(), c);
  EXPECT_EQ(tree.pop_best(), std::nullopt);
}

TEST(NodeTree, ChildBoundsNeverRegressAndIncumbentGates) {
  NodeTree tree;
  tree.add_root(4.0);
  BranchDecision d;
  const int child = tree.add_child(0, d, 3.0);  // weaker than the parent
  EXPECT_DOUBLE_EQ(tree.node(child).bound, 4.0);
  EXPECT_TRUE(tree.offer_incumbent(9.0));
  EXPECT_FALSE(tree.offer_incumbent(9.0));  // ties do not "improve"
  EXPECT_TRUE(tree.offer_incumbent(5.0));
  EXPECT_DOUBLE_EQ(tree.incumbent(), 5.0);
  EXPECT_FALSE(tree.done());  // open bound 4 could still beat 5
  EXPECT_TRUE(tree.offer_incumbent(4.0));
  EXPECT_TRUE(tree.done());  // bound 4 cannot *strictly* beat 4
}

TEST(Bnp, SingleItemIsImmediatelyOptimal) {
  // Width above 1/2: no two columns fit, so the slice optimum equals the
  // packing optimum.
  const Instance ins = integer_instance({{0.6, 2.0, 0.0}});
  const BnpResult result = solve(ins);
  EXPECT_EQ(result.status, BnpStatus::Optimal);
  EXPECT_NEAR(result.height, 2.0, kTol);
  EXPECT_NEAR(result.dual_bound, result.height, kTol);
  EXPECT_EQ(result.warm_phase1_iterations, 0);
}

TEST(Bnp, TallItemsMaySliceAcrossColumns) {
  // The configuration IP is a *relaxation* of strip packing: a 0.5-wide,
  // 2-tall item can occupy two side-by-side unit columns of one slab, so
  // the certified slice optimum is 1 while every real packing needs 2 —
  // which the Lemma 3.4 realization faithfully reports.
  const Instance ins = integer_instance({{0.5, 2.0, 0.0}});
  const BnpResult result = solve(ins);
  EXPECT_EQ(result.status, BnpStatus::Optimal);
  EXPECT_NEAR(result.height, 1.0, kTol);
  EXPECT_NEAR(result.packing.height(), 2.0, kTol);
  EXPECT_TRUE(testing::placement_valid(ins, result.packing.placement));
}

TEST(Bnp, OddPairsGapFamilyIsProvenOptimal) {
  for (std::size_t k = 1; k <= 4; ++k) {
    const auto family = gen::hard_integral_family(k);
    // The generator's LP certificate is real: Lemma 3.3's bound is the
    // fractional value, strictly below the integral optimum.
    EXPECT_NEAR(release::fractional_lower_bound(family.instance),
                family.certificate.lp_height, 1e-7)
        << "k=" << k;
    for (const bool colgen : {true, false}) {
      BnpOptions options;
      options.lp.use_column_generation = colgen;
      const BnpResult result = solve(family.instance, options);
      EXPECT_EQ(result.status, BnpStatus::Optimal) << "k=" << k;
      EXPECT_NEAR(result.height, family.certificate.ip_height, kTol)
          << "k=" << k << " colgen=" << colgen;
      EXPECT_NEAR(result.dual_bound, result.height, kTol);
      EXPECT_GT(result.height,
                family.certificate.lp_height + 0.25);  // the gap is real
      EXPECT_EQ(result.warm_phase1_iterations, 0);
    }
  }
}

TEST(Bnp, ReleasedGapFamilyIsProvenOptimal) {
  const auto family = gen::hard_integral_family(2, 3, 4.0);
  EXPECT_NEAR(release::fractional_lower_bound(family.instance),
              family.certificate.lp_height, 1e-7);
  const BnpResult result = solve(family.instance);
  EXPECT_EQ(result.status, BnpStatus::Optimal);
  EXPECT_NEAR(result.height, family.certificate.ip_height, kTol);
  EXPECT_NEAR(result.dual_bound, result.height, kTol);
  EXPECT_EQ(result.warm_phase1_iterations, 0);
  EXPECT_TRUE(
      testing::placement_valid(family.instance, result.packing.placement));
}

TEST(Bnp, BranchingIsExercisedWithoutTheRoundingIncumbent) {
  // With only the trivial stack incumbent the root bound cannot prune, so
  // proving the k+1 optimum requires real branching on the fractional
  // pair total — and every node re-solve must stay on the warm path.
  const auto family = gen::hard_integral_family(2);
  BnpOptions options;
  options.rounding_incumbent = false;
  const BnpResult result = solve(family.instance, options);
  EXPECT_EQ(result.status, BnpStatus::Optimal);
  EXPECT_NEAR(result.height, family.certificate.ip_height, kTol);
  // The first child already proves the incumbent optimal, so its sibling
  // is cut off by bound — at least one branching row must have
  // materialized, and more than the root was processed.
  EXPECT_GT(result.nodes, 1u);
  EXPECT_GE(result.branch_rows, 1u);
  EXPECT_EQ(result.warm_phase1_iterations, 0);
}

TEST(Bnp, PseudoCostStallGateKeepsCertifiedOptima) {
  // The stall auto-gate (options.pseudo_cost_stall_gate) swaps the
  // branching *selector* mid-search when the dual bound flatlines; the
  // selector never affects soundness, so certified optima must agree
  // between a gate tight enough to trip on any multi-node search, the
  // default, and the gate disabled.
  std::vector<Instance> instances;
  instances.push_back(gen::hard_integral_family(2).instance);
  instances.push_back(gen::hard_integral_family(2, 3, 4.0).instance);
  {
    Rng rng(7);
    std::vector<Item> items;
    for (std::size_t i = 0; i < 16; ++i) {
      const double w =
          static_cast<double>(rng.uniform_int(27, 39)) / 100.0;
      items.push_back(Item{Rect{w, 1.0}, 0.0});
    }
    instances.push_back(Instance(std::move(items), 1.0));
  }
  for (const Instance& ins : instances) {
    BnpOptions reference;
    reference.rounding_incumbent = false;
    reference.pseudo_cost_stall_gate = 0;  // gate off: pseudo costs stay on
    const BnpResult base = solve(ins, reference);
    ASSERT_EQ(base.status, BnpStatus::Optimal);
    for (const int gate : {1, 32}) {
      BnpOptions gated = reference;
      gated.pseudo_cost_stall_gate = gate;
      const BnpResult result = solve(ins, gated);
      ASSERT_EQ(result.status, BnpStatus::Optimal) << "gate=" << gate;
      EXPECT_EQ(result.height, base.height) << "gate=" << gate;
      EXPECT_EQ(result.dual_bound, base.dual_bound) << "gate=" << gate;
    }
  }
}

TEST(Bnp, ColdNodeSolvesMatchTheWarmPath) {
  const auto family = gen::hard_integral_family(3);
  BnpOptions warm;
  warm.rounding_incumbent = false;
  BnpOptions cold = warm;
  cold.reuse_engine = false;
  const BnpResult a = solve(family.instance, warm);
  const BnpResult b = solve(family.instance, cold);
  ASSERT_EQ(a.status, BnpStatus::Optimal);
  ASSERT_EQ(b.status, BnpStatus::Optimal);
  EXPECT_NEAR(a.height, b.height, kTol);
  EXPECT_NEAR(a.height, family.certificate.ip_height, kTol);
}

TEST(Bnp, DenseMasterBackendProvesTheSameOptima) {
  // The master LP runs on the reference dense-tableau backend instead of
  // the eta-file engine; branch and price must reach the same certified
  // optimum with a closed gap. Keeps the backend seam honest end to end,
  // not just at the single-LP conformance level.
  for (std::size_t k = 1; k <= 3; ++k) {
    const auto family = gen::hard_integral_family(k);
    BnpOptions dense;
    dense.lp.backend = "dense";
    const BnpResult result = solve(family.instance, dense);
    EXPECT_EQ(result.status, BnpStatus::Optimal) << "k=" << k;
    EXPECT_NEAR(result.height, family.certificate.ip_height, kTol) << "k=" << k;
    EXPECT_NEAR(result.dual_bound, result.height, kTol) << "k=" << k;
  }
}

TEST(Bnp, NodeBudgetReturnsABracket) {
  const auto family = gen::hard_integral_family(3);
  BnpOptions options;
  options.rounding_incumbent = false;
  options.budget.max_nodes = 1;
  const BnpResult result = solve(family.instance, options);
  EXPECT_EQ(result.status, BnpStatus::NodeLimit);
  EXPECT_LE(result.dual_bound, result.height + kTol);
  // The incumbent is still a valid integral solution...
  EXPECT_GE(result.height, family.certificate.ip_height - kTol);
  // ...and the dual bound is still a certified lower bound.
  EXPECT_LE(result.dual_bound, family.certificate.ip_height + kTol);
  EXPECT_TRUE(
      testing::placement_valid(family.instance, result.packing.placement));
}

TEST(Bnp, SeededReleaseWorkloadsAreCertifiedAndRealized) {
  // Integer-height, integer-release workloads: the certified optimum must
  // sandwich between the fractional bound and the realized packing.
  for (const std::uint64_t seed : {3u, 17u, 29u}) {
    Rng rng(seed);
    std::vector<Item> items;
    const std::size_t n = 8 + seed % 5;
    for (std::size_t i = 0; i < n; ++i) {
      const double w = static_cast<double>(rng.uniform_int(1, 4)) / 4.0;
      const double h = static_cast<double>(rng.uniform_int(1, 3));
      const double r = static_cast<double>(rng.uniform_int(0, 3));
      items.push_back(Item{Rect{w, h}, r});
    }
    const Instance ins(std::move(items), 1.0);
    const BnpResult result = solve(ins);
    ASSERT_EQ(result.status, BnpStatus::Optimal) << "seed=" << seed;
    EXPECT_NEAR(result.dual_bound, result.height, kTol);
    EXPECT_GE(result.height,
              release::fractional_lower_bound(ins) - 1e-7);
    EXPECT_EQ(result.warm_phase1_iterations, 0);
    EXPECT_TRUE(testing::placement_valid(ins, result.packing.placement))
        << "seed=" << seed;
    EXPECT_GE(result.packing.height(), result.height - kTol);
  }
}

TEST(Bnp, RejectsNonIntegerAndPrecedenceInstances) {
  EXPECT_THROW((void)solve(integer_instance({{0.5, 1.5, 0.0}})),
               ContractViolation);
  EXPECT_THROW((void)solve(integer_instance({{0.5, 1.0, 0.5}})),
               ContractViolation);
  Instance dag = integer_instance({{0.5, 1.0, 0.0}, {0.5, 1.0, 0.0}});
  dag.add_precedence(0, 1);
  EXPECT_THROW((void)solve(dag), ContractViolation);
}

TEST(BnpPacker, QuantizesArbitraryHeightsIntoAValidPacking) {
  Rng rng(11);
  gen::RectParams params;
  params.min_width = 0.2;
  params.max_width = 0.9;
  const auto rects = gen::random_rects(12, params, rng);
  const BnpPacker packer;
  const PackResult result = packer.pack(rects, 1.0);
  std::vector<Item> items;
  for (const Rect& r : rects) items.push_back(Item{r, 0.0});
  const Instance ins(std::move(items), 1.0);
  EXPECT_TRUE(testing::placement_valid(ins, result.placement));
  EXPECT_EQ(packer.name(), "BnP");
}

TEST(BnpPacker, RegisteredByNameButNotInTheHeuristicGallery) {
  const auto packer = make_packer("BnP");
  ASSERT_NE(packer, nullptr);
  EXPECT_EQ(packer->name(), "BnP");
  const std::vector<Rect> rects{{0.6, 1.0}, {0.6, 1.0}, {0.6, 1.0}};
  EXPECT_NEAR(packer->pack(rects, 1.0).height, 3.0, kTol);
  for (const auto& heuristic : all_packers()) {
    EXPECT_NE(heuristic->name(), "BnP");
  }
}

}  // namespace
}  // namespace stripack::bnp
