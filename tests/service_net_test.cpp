// Network front-end robustness tests: the TimerWheel and frame codec
// units, serial and concurrent bitwise replay of server responses
// against a direct SolverService, and the injected-connection-fault
// taxonomy — every fault must end in a documented structured error or a
// clean close, never a hang, a crash, or a poisoned warm master.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/instance_io.hpp"
#include "service/net/client.hpp"
#include "service/net/server.hpp"
#include "service/net/timer_wheel.hpp"
#include "service/solver_service.hpp"
#include "util/fault_injection.hpp"
#include "util/net.hpp"

namespace stripack::service::net {
namespace {

using Clock = std::chrono::steady_clock;

Instance make(const std::vector<std::array<double, 3>>& rows,
              double strip) {
  std::vector<Item> items;
  items.reserve(rows.size());
  for (const std::array<double, 3>& r : rows) {
    items.push_back(Item{Rect{r[0], r[1]}, r[2]});
  }
  return Instance(std::move(items), strip);
}

std::string instance_text(const Instance& instance) {
  std::ostringstream os;
  io::write_instance(os, instance);
  return os.str();
}

/// A small per-thread request stream in thread `t`'s own width/release
/// class (distinct strip width ⇒ distinct canonical class), including an
/// exact duplicate so the replay covers cache hits and warm re-solves.
std::vector<Instance> thread_stream(int t) {
  const double strip = 10.0 + t;
  std::vector<Instance> out;
  out.push_back(make({{4, 2, 0}, {6, 2, 0}, {4, 3, 0}}, strip));
  out.push_back(make({{4, 1, 0}, {6, 4, 0}}, strip));
  out.push_back(make({{4, 2, 0}, {6, 2, 0}, {4, 3, 0}}, strip));  // dup
  out.push_back(make({{4, 2, 1}, {6, 1, 0}}, strip));
  return out;
}

/// What a direct SolverService answers for `stream`, one request per
/// run() (the server serves a connection sequentially, so its per-
/// connection class state evolves exactly like this), with per-stream id
/// numbering — the bytes a connection must receive.
std::string direct_replay(const std::vector<Instance>& stream,
                          const ServiceOptions& options) {
  SolverService service(options);
  std::ostringstream os;
  for (const Instance& instance : stream) {
    (void)service.enqueue(instance);
    for (const ServiceResponse& r : service.run()) {
      SolverService::write_response(os, r);
    }
  }
  return os.str();
}

/// Starts a server and runs its epoll loop on a worker thread; the
/// destructor drains and joins.
class TestServer {
 public:
  explicit TestServer(ServerOptions options) : server_(std::move(options)) {
    port_ = server_.start();
    loop_ = std::thread([this] { clean_ = server_.run(); });
  }
  ~TestServer() { stop(); }

  void stop() {
    if (loop_.joinable()) {
      server_.request_drain();
      loop_.join();
    }
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool clean() const { return clean_; }
  [[nodiscard]] ServerStats stats() const { return server_.stats(); }
  StripackServer& server() { return server_; }

  [[nodiscard]] ClientOptions client_options() const {
    ClientOptions o;
    o.port = port_;
    o.io_timeout_seconds = 20.0;
    return o;
  }

 private:
  StripackServer server_;
  std::thread loop_;
  std::uint16_t port_ = 0;
  bool clean_ = false;
};

// --- TimerWheel ------------------------------------------------------------

TEST(TimerWheel, ExpiresInDeadlineThenIdOrder) {
  TimerWheel wheel(std::chrono::milliseconds(1), 16);
  const auto now = TimerWheel::Clock::now();
  wheel.arm(7, now + std::chrono::milliseconds(30));
  wheel.arm(3, now + std::chrono::milliseconds(10));
  wheel.arm(5, now + std::chrono::milliseconds(30));
  EXPECT_EQ(wheel.armed(), 3u);
  EXPECT_TRUE(wheel.expire(now + std::chrono::milliseconds(5)).empty());
  const std::vector<std::uint64_t> first =
      wheel.expire(now + std::chrono::milliseconds(20));
  ASSERT_EQ(first, (std::vector<std::uint64_t>{3}));
  const std::vector<std::uint64_t> rest =
      wheel.expire(now + std::chrono::milliseconds(200));
  ASSERT_EQ(rest, (std::vector<std::uint64_t>{5, 7}));
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, ReArmSupersedesEarlierDeadline) {
  TimerWheel wheel(std::chrono::milliseconds(1), 16);
  const auto now = TimerWheel::Clock::now();
  wheel.arm(1, now + std::chrono::milliseconds(5));
  wheel.arm(1, now + std::chrono::milliseconds(50));
  EXPECT_TRUE(wheel.expire(now + std::chrono::milliseconds(20)).empty());
  EXPECT_TRUE(wheel.is_armed(1));
  EXPECT_EQ(wheel.expire(now + std::chrono::milliseconds(60)),
            (std::vector<std::uint64_t>{1}));
}

TEST(TimerWheel, CancelledTimerNeverFires) {
  TimerWheel wheel(std::chrono::milliseconds(1), 16);
  const auto now = TimerWheel::Clock::now();
  wheel.arm(9, now + std::chrono::milliseconds(5));
  wheel.cancel(9);
  EXPECT_FALSE(wheel.is_armed(9));
  EXPECT_TRUE(wheel.expire(now + std::chrono::milliseconds(500)).empty());
}

TEST(TimerWheel, PastDeadlineExpiresOnNextSweep) {
  TimerWheel wheel(std::chrono::milliseconds(10), 8);
  const auto now = TimerWheel::Clock::now();
  // Advance the cursor far past the origin first.
  (void)wheel.expire(now + std::chrono::seconds(2));
  wheel.arm(4, now);  // long gone
  EXPECT_EQ(wheel.expire(now + std::chrono::seconds(2)),
            (std::vector<std::uint64_t>{4}));
}

TEST(TimerWheel, DuplicateReArmToSameDeadlineFiresOnce) {
  TimerWheel wheel(std::chrono::milliseconds(1), 16);
  const auto now = TimerWheel::Clock::now();
  const auto deadline = now + std::chrono::milliseconds(5);
  wheel.arm(2, deadline);
  wheel.arm(2, deadline);  // duplicate bucket entry, same authoritative slot
  EXPECT_EQ(wheel.expire(now + std::chrono::milliseconds(100)),
            (std::vector<std::uint64_t>{2}));
  EXPECT_TRUE(wheel.expire(now + std::chrono::milliseconds(200)).empty());
}

TEST(TimerWheel, NextDeadlineTracksEarliestArmed) {
  TimerWheel wheel;
  EXPECT_FALSE(wheel.next_deadline().has_value());
  const auto now = TimerWheel::Clock::now();
  wheel.arm(1, now + std::chrono::seconds(5));
  wheel.arm(2, now + std::chrono::seconds(1));
  ASSERT_TRUE(wheel.next_deadline().has_value());
  EXPECT_EQ(*wheel.next_deadline(), now + std::chrono::seconds(1));
  wheel.cancel(2);
  EXPECT_EQ(*wheel.next_deadline(), now + std::chrono::seconds(5));
}

// --- frame codec -----------------------------------------------------------

TEST(FrameCodec, HeaderRoundTrips) {
  std::array<char, util::kFrameHeaderBytes> header{};
  util::encode_frame_header(0x01020304u, header);
  std::uint32_t len = 0;
  ASSERT_TRUE(util::decode_frame_header(header, len));
  EXPECT_EQ(len, 0x01020304u);
}

TEST(FrameCodec, BadMagicIsRejected) {
  std::array<char, util::kFrameHeaderBytes> header{};
  util::encode_frame_header(4, header);
  header[0] = 'X';
  std::uint32_t len = 0;
  EXPECT_FALSE(util::decode_frame_header(header, len));
}

TEST(FrameCodec, EncodeFramePrefixesHeader) {
  const std::string frame = util::encode_frame("body");
  ASSERT_EQ(frame.size(), util::kFrameHeaderBytes + 4);
  EXPECT_EQ(frame.substr(0, 4), "SPK1");
  EXPECT_EQ(frame.substr(util::kFrameHeaderBytes), "body");
}

// --- connection fault plans ------------------------------------------------

TEST(ConnFaultPlan, SameSeedSameEvents) {
  const ConnFaultPlan a = ConnFaultPlan::random(42, 5, 10);
  const ConnFaultPlan b = ConnFaultPlan::random(42, 5, 10);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].site, b.events[i].site);
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].action, b.events[i].action);
  }
  const ConnFaultPlan c = ConnFaultPlan::random(43, 5, 10);
  bool differs = false;
  for (std::size_t i = 0; i < c.events.size(); ++i) {
    differs = differs || c.events[i].site != a.events[i].site ||
              c.events[i].at != a.events[i].at ||
              c.events[i].action != a.events[i].action;
  }
  EXPECT_TRUE(differs);
}

TEST(ConnFaultInjector, EachEventFiresExactlyOnceAcrossThreads) {
  ConnFaultPlan plan;
  plan.events.push_back(
      ConnFaultEvent{ConnFaultSite::Send, 3, ConnFaultAction::Disconnect});
  ConnFaultInjector injector(plan);
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        if (injector.poll(ConnFaultSite::Send) != ConnFaultAction::None) {
          ++fired;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(injector.fired(), 1u);
  EXPECT_EQ(injector.observed(ConnFaultSite::Send), 40u);
}

// --- server round trips ----------------------------------------------------

TEST(StripackServer, ConnectionStreamIsBitwiseIdenticalToDirectService) {
  ServerOptions options;
  TestServer server(options);
  FrameClient client(server.client_options());
  std::string wire;
  for (const Instance& instance : thread_stream(0)) {
    const ClientResult r = client.request(instance_text(instance));
    ASSERT_TRUE(r.ok) << r.error;
    wire += r.body;
  }
  EXPECT_EQ(wire, direct_replay(thread_stream(0), options.service));
  // The duplicate request proves the warm master + cache survived the
  // whole conversation.
  EXPECT_NE(wire.find("cache hit"), std::string::npos);
  server.stop();
  EXPECT_TRUE(server.clean());
  EXPECT_EQ(server.stats().responses, thread_stream(0).size());
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

TEST(StripackServer, MalformedBodyGetsErrorAndConnectionSurvives) {
  TestServer server(ServerOptions{});
  FrameClient client(server.client_options());
  const ClientResult bad = client.request("this is not an instance\n");
  ASSERT_TRUE(bad.ok) << bad.error;  // transport ok, structured error body
  EXPECT_NE(bad.body.find("status error"), std::string::npos) << bad.body;
  EXPECT_NE(bad.body.find("request 0"), std::string::npos) << bad.body;
  // Same connection, next frame: still usable, and the wire sequence
  // number advanced (protocol errors consume a sequence slot too).
  const ClientResult good =
      client.request(instance_text(make({{4, 2, 0}}, 10)));
  ASSERT_TRUE(good.ok) << good.error;
  EXPECT_NE(good.body.find("status optimal"), std::string::npos)
      << good.body;
  EXPECT_NE(good.body.find("request 1"), std::string::npos) << good.body;
  EXPECT_EQ(server.stats().protocol_errors, 1u);
}

TEST(StripackServer, TrailingGarbageAfterDocumentIsAProtocolError) {
  TestServer server(ServerOptions{});
  FrameClient client(server.client_options());
  const ClientResult r = client.request(
      instance_text(make({{4, 2, 0}}, 10)) + "unexpected trailing data\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.body.find("status error"), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("trailing"), std::string::npos) << r.body;
}

TEST(StripackServer, BadMagicGetsStructuredErrorThenClose) {
  TestServer server(ServerOptions{});
  util::Fd fd = util::connect_tcp("127.0.0.1", server.port(), 5.0);
  std::string junk = "XXXX";
  junk.append(3, '\0');
  junk += '\x04';
  junk += "body";
  ASSERT_TRUE(util::write_all(fd.get(), junk.data(), junk.size(), 5.0));
  std::array<char, util::kFrameHeaderBytes> header{};
  ASSERT_TRUE(util::read_exact(fd.get(), header.data(), header.size(), 5.0));
  std::uint32_t len = 0;
  ASSERT_TRUE(util::decode_frame_header(header, len));
  std::string body(len, '\0');
  ASSERT_TRUE(util::read_exact(fd.get(), body.data(), len, 5.0));
  EXPECT_NE(body.find("bad frame magic"), std::string::npos) << body;
  // There is no resync point after a magic mismatch: the server closes.
  char extra = 0;
  EXPECT_FALSE(util::read_exact(fd.get(), &extra, 1, 5.0));
  EXPECT_EQ(server.stats().protocol_errors, 1u);
}

TEST(StripackServer, OversizedDeclarationIsRejectedBeforeBuffering) {
  ServerOptions options;
  options.max_request_bytes = 128;
  TestServer server(options);
  ConnFaultPlan plan;
  plan.events.push_back(
      ConnFaultEvent{ConnFaultSite::Send, 1, ConnFaultAction::Oversize});
  ConnFaultInjector injector(plan);
  ClientOptions copts = server.client_options();
  copts.faults = &injector;
  copts.max_attempts = 1;
  FrameClient client(copts);
  const ClientResult r = client.request(instance_text(make({{4, 2, 0}}, 10)));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.body.find("request too large"), std::string::npos) << r.body;
  EXPECT_EQ(server.stats().protocol_errors, 1u);
  EXPECT_EQ(injector.fired(), 1u);
}

TEST(StripackServer, SlowTrickleTripsReadDeadlineWithStructuredError) {
  ServerOptions options;
  options.read_deadline_seconds = 0.2;
  TestServer server(options);
  ConnFaultPlan plan;
  plan.events.push_back(
      ConnFaultEvent{ConnFaultSite::Send, 1, ConnFaultAction::Trickle});
  ConnFaultInjector injector(plan);
  ClientOptions copts = server.client_options();
  copts.faults = &injector;
  copts.trickle_delay_seconds = 0.05;  // frame >> deadline at this pace
  copts.max_attempts = 2;              // the retry is un-faulted
  FrameClient client(copts);
  const ClientResult r = client.request(instance_text(make({{4, 2, 0}}, 10)));
  // The trickled attempt dies on the server's read deadline; the retry
  // (exactly-once injection) completes normally.
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.attempts, 2);
  EXPECT_NE(r.body.find("status optimal"), std::string::npos) << r.body;
  EXPECT_GE(server.stats().deadline_expiries, 1u);
}

TEST(StripackServer, ShortWriteDribbleIsServedNormally) {
  TestServer server(ServerOptions{});
  ConnFaultPlan plan;
  plan.events.push_back(
      ConnFaultEvent{ConnFaultSite::Send, 1, ConnFaultAction::ShortWrite});
  ConnFaultInjector injector(plan);
  ClientOptions copts = server.client_options();
  copts.faults = &injector;
  copts.max_attempts = 1;
  FrameClient client(copts);
  // Byte-at-a-time arrival walks the server through every partial-read
  // resume; the response must be exactly the un-faulted one.
  const ClientResult r = client.request(instance_text(make({{4, 2, 0}}, 10)));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.body, direct_replay({make({{4, 2, 0}}, 10)},
                                  ServerOptions{}.service));
}

TEST(StripackServer, BacklogShedsWithStructuredOverloadError) {
  ServerOptions options;
  options.shed_backlog = 0;  // deterministic: every request sheds
  TestServer server(options);
  FrameClient client(server.client_options());
  const ClientResult r = client.request(instance_text(make({{4, 2, 0}}, 10)));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.body.find("status error"), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("error overloaded"), std::string::npos) << r.body;
  // Shedding answers; it does not hang up. The connection still works.
  const ClientResult again =
      client.request(instance_text(make({{4, 2, 0}}, 10)));
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(server.stats().overload_sheds, 2u);
}

TEST(StripackServer, RetryOverloadBacksOffAndReportsAttempts) {
  ServerOptions options;
  options.shed_backlog = 0;
  TestServer server(options);
  ClientOptions copts = server.client_options();
  copts.retry_overload = true;
  copts.max_attempts = 3;
  copts.backoff_base_seconds = 0.01;
  FrameClient client(copts);
  const ClientResult r = client.request(instance_text(make({{4, 2, 0}}, 10)));
  // Every attempt sheds; the helper surfaces the last response after
  // exhausting its backoff budget.
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.attempts, 3);
  EXPECT_NE(r.body.find("error overloaded"), std::string::npos) << r.body;
}

TEST(StripackServer, BacklogDegradesAdmissionDeterministically) {
  ServerOptions options;
  options.degrade_backlog = 0;  // deterministic: every request degrades
  TestServer server(options);
  FrameClient client(server.client_options());
  const ClientResult r = client.request(instance_text(make({{4, 2, 0}}, 10)));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.body.find("admission degraded"), std::string::npos) << r.body;
  EXPECT_EQ(server.stats().degraded, 1u);
}

TEST(StripackServer, ConnectionLimitShedsAtAcceptWithStructuredError) {
  ServerOptions options;
  options.max_connections = 1;
  TestServer server(options);
  util::Fd holder = util::connect_tcp("127.0.0.1", server.port(), 5.0);
  // Make sure the holder connection is registered before the second one.
  const auto start = Clock::now();
  while (server.stats().accepted < 1 &&
         Clock::now() - start < std::chrono::seconds(5)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.stats().accepted, 1u);
  util::Fd extra = util::connect_tcp("127.0.0.1", server.port(), 5.0);
  std::array<char, util::kFrameHeaderBytes> header{};
  ASSERT_TRUE(util::read_exact(extra.get(), header.data(), header.size(),
                               5.0));
  std::uint32_t len = 0;
  ASSERT_TRUE(util::decode_frame_header(header, len));
  std::string body(len, '\0');
  ASSERT_TRUE(util::read_exact(extra.get(), body.data(), len, 5.0));
  EXPECT_NE(body.find("error overloaded"), std::string::npos) << body;
  char byte = 0;
  EXPECT_FALSE(util::read_exact(extra.get(), &byte, 1, 5.0));  // shed = close
  EXPECT_GE(server.stats().overload_sheds, 1u);
}

TEST(StripackServer, KilledConnectionNeverPoisonsTheWarmMaster) {
  TestServer server(ServerOptions{});
  const Instance instance = make({{4, 2, 0}, {6, 2, 0}}, 10);
  {
    // Client A deserts before reading its response: the solve still runs,
    // its result is dropped on arrival, and the warm master keeps the
    // class state A's request built.
    ConnFaultPlan plan;
    plan.events.push_back(ConnFaultEvent{ConnFaultSite::Recv, 1,
                                         ConnFaultAction::Disconnect});
    ConnFaultInjector injector(plan);
    ClientOptions copts = server.client_options();
    copts.faults = &injector;
    copts.max_attempts = 1;
    FrameClient deserter(copts);
    const ClientResult r = deserter.request(instance_text(instance));
    EXPECT_FALSE(r.ok);
  }
  // Wait until the server has observed the desertion: the hangup is a
  // connection drop, and the solve (finishing on its own schedule) an
  // orphaned result — unless the solve beat the hangup through epoll, in
  // which case the write path absorbed the death instead. Either way the
  // connection is gone and the master untouched.
  const auto start = Clock::now();
  while (server.stats().connection_drops + server.stats().dropped_results <
             1 &&
         Clock::now() - start < std::chrono::seconds(20)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(server.stats().connection_drops +
                server.stats().dropped_results,
            1u);
  // Client B repeats the request: a cache hit proves the master and its
  // class state survived A's desertion intact.
  FrameClient client(server.client_options());
  const ClientResult r = client.request(instance_text(instance));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.body.find("status optimal"), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("cache hit"), std::string::npos) << r.body;
}

TEST(StripackServer, AbortiveCloseStormIsSurvived) {
  TestServer server(ServerOptions{});
  // A storm of RST closes (EPOLLHUP/EPOLLERR deliveries), some mid-frame.
  for (int i = 0; i < 10; ++i) {
    ConnFaultPlan plan;
    plan.events.push_back(ConnFaultEvent{
        ConnFaultSite::Send, 1, ConnFaultAction::AbortiveClose});
    ConnFaultInjector injector(plan);
    ClientOptions copts = server.client_options();
    copts.faults = &injector;
    copts.max_attempts = 1;
    FrameClient client(copts);
    const ClientResult r =
        client.request(instance_text(make({{4, 2, 0}}, 10)));
    EXPECT_FALSE(r.ok);
  }
  // The server shrugged: a normal request still round-trips.
  FrameClient client(server.client_options());
  const ClientResult r = client.request(instance_text(make({{4, 2, 0}}, 10)));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.body.find("status optimal"), std::string::npos) << r.body;
}

TEST(StripackServer, DrainDeliversInFlightResponseAndExitsClean) {
  TestServer server(ServerOptions{});
  ClientResult result;
  std::thread requester([&] {
    FrameClient client(server.client_options());
    result = client.request(instance_text(make({{4, 2, 0}, {6, 3, 0}}, 10)));
  });
  // Drain as soon as the request frame has been admitted; the in-flight
  // solve must finish and its response flush before run() returns.
  const auto start = Clock::now();
  while (server.stats().requests < 1 &&
         Clock::now() - start < std::chrono::seconds(20)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.server().request_drain();
  server.stop();
  requester.join();
  EXPECT_TRUE(server.clean());
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_NE(result.body.find("status optimal"), std::string::npos)
      << result.body;
}

// --- concurrent soak -------------------------------------------------------

TEST(StripackServer, ConcurrentSoakRepliesBitwiseAndSurvivesChaos) {
  ServerOptions options;
  // Generous limits: admission must stay "normal" so the per-thread
  // direct replays match bitwise.
  options.degrade_backlog = 1000;
  options.shed_backlog = 1000;
  TestServer server(options);

  constexpr int kGoodThreads = 4;
  constexpr int kChaosThreads = 4;
  std::array<std::string, kGoodThreads> wires;
  std::array<std::string, kGoodThreads> errors;
  std::atomic<int> chaos_responses{0};
  std::atomic<int> chaos_transport_errors{0};
  std::atomic<bool> chaos_malformed_frame{false};

  std::vector<std::thread> threads;
  threads.reserve(kGoodThreads + kChaosThreads);
  for (int t = 0; t < kGoodThreads; ++t) {
    threads.emplace_back([&, t] {
      // One connection, sequential request/response, own request class:
      // this thread's wire bytes must replay a direct SolverService.
      FrameClient client(server.client_options());
      for (const Instance& instance : thread_stream(t)) {
        const ClientResult r = client.request(instance_text(instance));
        if (!r.ok) {
          errors[static_cast<std::size_t>(t)] = r.error;
          return;
        }
        wires[static_cast<std::size_t>(t)] += r.body;
      }
    });
  }
  for (int t = 0; t < kChaosThreads; ++t) {
    threads.emplace_back([&, t] {
      // Seeded chaos: every exchange must end in a complete response
      // frame or a transport error — never a hang (the io timeout is the
      // test's liveness bound) and never a malformed frame.
      ConnFaultInjector injector(
          ConnFaultPlan::random(static_cast<std::uint64_t>(1000 + t), 4, 6));
      ClientOptions copts = server.client_options();
      copts.faults = &injector;
      copts.max_attempts = 1;
      copts.trickle_delay_seconds = 0.001;
      const Instance instance =
          make({{4, 2, 0}, {6, 2, 0}}, 30.0 + t);  // own class
      for (int i = 0; i < 6; ++i) {
        FrameClient client(copts);
        const ClientResult r = client.request(instance_text(instance));
        if (r.ok) {
          ++chaos_responses;
          if (r.body.find("stripack-response v1") == std::string::npos) {
            chaos_malformed_frame = true;
          }
        } else {
          ++chaos_transport_errors;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (int t = 0; t < kGoodThreads; ++t) {
    ASSERT_TRUE(errors[static_cast<std::size_t>(t)].empty())
        << "thread " << t << ": " << errors[static_cast<std::size_t>(t)];
    EXPECT_EQ(wires[static_cast<std::size_t>(t)],
              direct_replay(thread_stream(t), options.service))
        << "thread " << t;
  }
  EXPECT_FALSE(chaos_malformed_frame.load());
  EXPECT_EQ(chaos_responses.load() + chaos_transport_errors.load(),
            kChaosThreads * 6);

  server.stop();
  EXPECT_TRUE(server.clean());
}

TEST(StripackServer, SeededFaultPlanSweepAlwaysEndsStructured) {
  ServerOptions options;
  options.read_deadline_seconds = 1.0;  // bound trickle attempts
  TestServer server(options);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ConnFaultInjector injector(ConnFaultPlan::random(seed, 3, 4));
    ClientOptions copts = server.client_options();
    copts.faults = &injector;
    copts.max_attempts = 1;
    copts.trickle_delay_seconds = 0.001;
    copts.io_timeout_seconds = 20.0;
    const Instance instance = make({{4, 2, 0}}, 10);
    for (int i = 0; i < 5; ++i) {
      FrameClient client(copts);
      const ClientResult r = client.request(instance_text(instance));
      // Liveness is the assertion: the exchange terminated inside its
      // timeout, with either a complete frame or a transport error.
      if (r.ok) {
        EXPECT_NE(r.body.find("stripack-response v1"), std::string::npos)
            << "seed " << seed << " request " << i;
      } else {
        EXPECT_FALSE(r.error.empty()) << "seed " << seed;
      }
    }
  }
  // After the whole sweep the server still serves normally.
  FrameClient client(server.client_options());
  const ClientResult r = client.request(instance_text(make({{4, 2, 0}}, 10)));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.body.find("status optimal"), std::string::npos) << r.body;
  server.stop();
  EXPECT_TRUE(server.clean());
}

}  // namespace
}  // namespace stripack::service::net
