#include "release/config_lp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "gen/release_gen.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace stripack::release {
namespace {

Instance items_of(const std::vector<std::tuple<double, double, double>>& whr) {
  Instance ins;
  for (const auto& [w, h, r] : whr) ins.add_item(w, h, r);
  return ins;
}

// Checks that the slices satisfy the packing and covering constraints.
void verify_fractional(const ConfigLpProblem& problem,
                       const FractionalSolution& sol) {
  ASSERT_TRUE(sol.feasible);
  const std::size_t phases = problem.releases.size();
  const std::size_t widths = problem.widths.size();
  // Packing: total slice height in phase j <= phase duration (j < R).
  std::vector<double> phase_height(phases, 0.0);
  std::vector<std::vector<double>> supply(phases,
                                          std::vector<double>(widths, 0.0));
  for (const Slice& s : sol.slices) {
    ASSERT_LT(s.phase, phases);
    phase_height[s.phase] += s.height;
    for (std::size_t i = 0; i < widths; ++i) {
      supply[s.phase][i] += s.config.counts[i] * s.height;
    }
  }
  for (std::size_t j = 0; j + 1 < phases; ++j) {
    EXPECT_LE(phase_height[j],
              problem.releases[j + 1] - problem.releases[j] + 1e-6);
  }
  // Covering: for each k, i: sum_{j>=k} supply >= sum_{j>=k} demand.
  for (std::size_t k = 0; k < phases; ++k) {
    for (std::size_t i = 0; i < widths; ++i) {
      double s = 0.0, d = 0.0;
      for (std::size_t j = k; j < phases; ++j) {
        s += supply[j][i];
        d += problem.demand[j][i];
      }
      EXPECT_GE(s, d - 1e-6) << "cover k=" << k << " i=" << i;
    }
  }
  // Objective = total phase-R height; height = rho_R + objective.
  EXPECT_NEAR(sol.objective, phase_height[phases - 1], 1e-6);
  EXPECT_NEAR(sol.height, problem.releases.back() + sol.objective, 1e-9);
}

TEST(MakeProblem, ExtractsDistinctTables) {
  const Instance ins = items_of(
      {{0.5, 1.0, 0.0}, {0.5, 0.5, 1.0}, {0.25, 1.0, 0.0}, {0.25, 0.5, 1.0}});
  const auto problem = make_problem(ins);
  EXPECT_EQ(problem.widths, (std::vector<double>{0.5, 0.25}));
  EXPECT_EQ(problem.releases, (std::vector<double>{0.0, 1.0}));
  EXPECT_DOUBLE_EQ(problem.demand[0][0], 1.0);   // width .5 at r=0
  EXPECT_DOUBLE_EQ(problem.demand[1][0], 0.5);   // width .5 at r=1
  EXPECT_DOUBLE_EQ(problem.demand[0][1], 1.0);
  EXPECT_DOUBLE_EQ(problem.demand[1][1], 0.5);
}

TEST(ConfigLp, SingleReleaseIsFractionalStripPacking) {
  // Two width-0.5 items of height 1, release 0: fractional height 1
  // (side by side).
  const Instance ins = items_of({{0.5, 1.0, 0.0}, {0.5, 1.0, 0.0}});
  const auto sol = solve_config_lp(make_problem(ins));
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.height, 1.0, 1e-6);
  verify_fractional(make_problem(ins), sol);
}

TEST(ConfigLp, FullWidthItemsStackFractionally) {
  const Instance ins = items_of({{1.0, 1.0, 0.0}, {1.0, 1.0, 0.0}});
  const auto sol = solve_config_lp(make_problem(ins));
  EXPECT_NEAR(sol.height, 2.0, 1e-6);
}

TEST(ConfigLp, LateReleaseForcesWaiting) {
  // One 0.5-wide item released at 10 with height 1. The fractional version
  // explicitly allows pieces of the *same* rectangle side by side (§3), so
  // the LP halves it into two parallel strips: height 10 + 0.5.
  const Instance ins = items_of({{0.5, 1.0, 10.0}});
  const auto sol = solve_config_lp(make_problem(ins));
  EXPECT_NEAR(sol.height, 10.5, 1e-6);
  // A full-width item cannot be parallelized: height 10 + 1.
  const Instance full = items_of({{1.0, 1.0, 10.0}});
  EXPECT_NEAR(solve_config_lp(make_problem(full)).height, 11.0, 1e-6);
}

TEST(ConfigLp, EarlyPhaseAbsorbsEarlyWork) {
  // Item A (h=2... not allowed >1; h=1) at r=0, item B at r=1, same width
  // 1.0: A fills [0,1), B [1,2): height 2.
  const Instance ins = items_of({{1.0, 1.0, 0.0}, {1.0, 1.0, 1.0}});
  const auto sol = solve_config_lp(make_problem(ins));
  EXPECT_NEAR(sol.height, 2.0, 1e-6);
  verify_fractional(make_problem(ins), sol);
}

TEST(ConfigLp, FractionalBeatsIntegralWhenSplittingHelps) {
  // Three 0.5-wide unit-height items, one release: fractional height 1.5
  // (one item split across the two columns), integral needs 2.
  const Instance ins =
      items_of({{0.5, 1.0, 0.0}, {0.5, 1.0, 0.0}, {0.5, 1.0, 0.0}});
  const auto sol = solve_config_lp(make_problem(ins));
  EXPECT_NEAR(sol.height, 1.5, 1e-6);
}

TEST(ConfigLp, ColgenMatchesEnumeration) {
  Rng rng(8);
  gen::ReleaseWorkloadParams params;
  params.n = 40;
  params.K = 4;
  const Instance ins = gen::poisson_release_workload(params, rng);
  const auto problem = make_problem(ins);

  ConfigLpOptions enumerate_options;
  const auto full = solve_config_lp(problem, enumerate_options);
  ConfigLpOptions colgen_options;
  colgen_options.use_column_generation = true;
  const auto cg = solve_config_lp(problem, colgen_options);

  ASSERT_TRUE(full.feasible);
  ASSERT_TRUE(cg.feasible);
  EXPECT_NEAR(full.height, cg.height, 1e-5);
  verify_fractional(problem, full);
  verify_fractional(problem, cg);
  EXPECT_GT(cg.colgen_rounds, 0);
  // Warm-started masters never rerun phase 1 after the first round.
  EXPECT_EQ(cg.colgen_warm_phase1_iterations, 0);
}

TEST(ConfigLp, LowerBoundIsBelowAnyValidHeight) {
  Rng rng(21);
  gen::ReleaseWorkloadParams params;
  params.n = 30;
  params.K = 3;
  const Instance ins = gen::poisson_release_workload(params, rng);
  const double lb = fractional_lower_bound(ins);
  // The trivial bounds are dominated by the LP bound.
  EXPECT_GE(lb, release_lower_bound(ins) - 1e-6);
  EXPECT_GE(lb, area_lower_bound(ins) - 1e-6);
}

TEST(ConfigLp, BasicSolutionWithinLemma33Budget) {
  Rng rng(33);
  gen::ReleaseWorkloadParams params;
  params.n = 60;
  params.K = 4;
  const Instance ins = gen::poisson_release_workload(params, rng);
  const auto problem = make_problem(ins);
  const auto sol = solve_config_lp(problem);
  ASSERT_TRUE(sol.feasible);
  // Lemma 3.3: nonzeros <= (W+1)(R+1) (W widths, R+1 phases here).
  const std::size_t budget =
      (problem.widths.size() + 1) * problem.releases.size();
  EXPECT_LE(sol.slices.size(), budget);
  verify_fractional(problem, sol);
}

TEST(ConfigLp, CoarseLowerBoundIsBelowExact) {
  Rng rng(87);
  gen::ReleaseWorkloadParams params;
  params.n = 40;
  params.K = 3;
  const Instance ins = gen::poisson_release_workload(params, rng);
  const double exact = fractional_lower_bound(ins);
  for (double eps_down : {0.5, 0.25, 0.1}) {
    const double coarse = fractional_lower_bound_coarse(ins, eps_down);
    EXPECT_LE(coarse, exact + 1e-6) << "eps_down=" << eps_down;
    // Lemma 3.1 both ways: the coarse bound is within (1+eps) of exact.
    EXPECT_GE(coarse * (1.0 + eps_down), exact - 1e-6);
  }
}

class ConfigLpSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConfigLpSweep, RandomWorkloadsSolveAndVerify) {
  Rng rng(GetParam());
  gen::ReleaseWorkloadParams params;
  params.n = 50;
  params.K = 4;
  params.arrival_rate = rng.uniform(0.5, 4.0);
  const Instance ins = gen::poisson_release_workload(params, rng);
  const auto problem = make_problem(ins);
  const auto sol = solve_config_lp(problem);
  verify_fractional(problem, sol);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigLpSweep,
                         ::testing::Values(1u, 12u, 23u, 34u, 45u));

// ------------------------------------------------ incremental re-solves
Instance cap_test_instance(std::uint64_t seed) {
  Rng rng(seed);
  gen::ReleaseWorkloadParams params;
  params.n = 30;
  params.K = 3;
  return gen::poisson_release_workload(params, rng);
}

TEST(ConfigLpSolver, HeightCapAtOrAboveOptimumIsFree) {
  const auto problem = make_problem(cap_test_instance(61));
  for (const bool colgen : {false, true}) {
    ConfigLpOptions options;
    options.use_column_generation = colgen;
    ConfigLpSolver solver(problem, options);
    const auto base = solver.solve();
    verify_fractional(problem, base);
    // The objective *is* the capped quantity: a cap at (or above) the
    // optimum adds a satisfied row, so the dual re-solve is free.
    for (const double margin : {0.5, 0.0}) {
      const auto capped =
          solver.resolve_with_height_cap(base.objective + margin);
      verify_fractional(problem, capped);
      EXPECT_NEAR(capped.objective, base.objective, 1e-6)
          << "colgen=" << colgen << " margin=" << margin;
      EXPECT_EQ(capped.dual_iterations, 0);
      EXPECT_EQ(capped.colgen_warm_phase1_iterations, 0);
    }
  }
}

TEST(ConfigLpSolver, HeightCapBelowOptimumIsInfeasible) {
  const auto problem = make_problem(cap_test_instance(62));
  ConfigLpSolver solver(problem);
  const auto base = solver.solve();
  ASSERT_TRUE(base.feasible);
  ASSERT_GT(base.objective, 0.1);
  // The LP minimizes the phase-R height, so any cap below the optimum cuts
  // off the entire feasible set: the branch-and-bound "prune" outcome.
  const auto pruned = solver.resolve_with_height_cap(base.objective * 0.5);
  EXPECT_FALSE(pruned.feasible);
  // A prune needs the Farkas certificate, not a mere non-optimal status.
  EXPECT_EQ(pruned.status, lp::SolveStatus::Infeasible);
  // The solver state survives the infeasible probe: relaxing the cap back
  // above the optimum recovers it.
  const auto recovered = solver.resolve_with_height_cap(base.objective + 1.0);
  verify_fractional(problem, recovered);
  EXPECT_NEAR(recovered.objective, base.objective, 1e-6);
}

TEST(ConfigLpSolver, PhaseCapacityTighteningIsMonotoneAndRuleInvariant) {
  const auto problem = make_problem(cap_test_instance(63));
  ASSERT_GT(problem.num_releases(), 1u);
  const double full = problem.releases[1] - problem.releases[0];
  double tightened_value = 0.0;
  bool have_value = false;
  for (const lp::PricingRule rule :
       {lp::PricingRule::Dantzig, lp::PricingRule::Bland,
        lp::PricingRule::SteepestEdge}) {
    ConfigLpOptions options;
    options.pricing = rule;
    ConfigLpSolver solver(problem, options);
    const auto base = solver.solve();
    ASSERT_TRUE(base.feasible);
    // Halving phase 0's capacity pushes work into later phases: the
    // objective can only grow, with no phase 1 anywhere.
    const auto tight = solver.resolve_with_phase_capacity(0, full * 0.5);
    verify_fractional(problem, tight);
    EXPECT_GE(tight.objective, base.objective - 1e-6);
    EXPECT_EQ(tight.colgen_warm_phase1_iterations, 0);
    // Restoring the capacity restores the optimum.
    const auto relaxed = solver.resolve_with_phase_capacity(0, full);
    verify_fractional(problem, relaxed);
    EXPECT_NEAR(relaxed.objective, base.objective, 1e-6);
    // Every pricing rule reaches the same tightened optimum.
    if (!have_value) {
      tightened_value = tight.objective;
      have_value = true;
    } else {
      EXPECT_NEAR(tight.objective, tightened_value,
                  1e-6 * (1.0 + tightened_value));
    }
  }
}

// ------------------------------------------------ Farkas pricing
// Regression for the removed restricted-only caveat: before Farkas
// pricing, a column-generation master that became infeasible after a
// branching row was reported Infeasible even when the *full* master was
// feasible — a branch-and-price caller acting on that verdict would have
// wrongly pruned a feasible branch.
TEST(ConfigLpSolver, FarkasPricingRepairsARestrictedInfeasibleBranch) {
  // One 0.5 and one 0.3 item: the colgen master only ever sees the
  // singleton seeds and (at most) the {0.5, 0.3} pair. A branch row
  // demanding one unit of the {0.3, 0.3} pattern is infeasible for that
  // restricted master, but perfectly feasible for the full one.
  const Instance ins = items_of({{0.5, 1.0, 0.0}, {0.3, 1.0, 0.0}});
  const auto problem = make_problem(ins);

  BranchPredicate pattern;
  pattern.kind = BranchPredicate::Kind::Pattern;
  pattern.phase = 0;
  pattern.counts = {0, 2};  // widths descending: [0.5, 0.3]

  ConfigLpOptions colgen_options;
  colgen_options.use_column_generation = true;
  ConfigLpSolver colgen(problem, colgen_options);
  const auto base = colgen.solve();
  ASSERT_TRUE(base.feasible);
  // {0.5,0.5} at 1/2 plus {0.3,0.3,0.3} at 1/3 — both items split.
  EXPECT_NEAR(base.objective, 5.0 / 6.0, 1e-6);

  colgen.add_branch_row(pattern, lp::Sense::GE, 1.0);
  const auto repaired = colgen.resolve();
  ASSERT_TRUE(repaired.feasible)
      << "Farkas pricing must inject the {0.3,0.3} column";
  EXPECT_GE(repaired.farkas_rounds, 1);
  EXPECT_GE(repaired.farkas_columns, 1u);
  EXPECT_EQ(repaired.colgen_warm_phase1_iterations, 0);
  verify_fractional(problem, repaired);

  // The enumeration-mode master (all columns up front) is the ground
  // truth for the branched optimum.
  ConfigLpSolver enumerated(problem);
  ASSERT_TRUE(enumerated.solve().feasible);
  enumerated.add_branch_row(pattern, lp::Sense::GE, 1.0);
  const auto truth = enumerated.resolve();
  ASSERT_TRUE(truth.feasible);
  EXPECT_NEAR(repaired.objective, truth.objective, 1e-6);
  // One forced {0.3,0.3} slab plus {0.5,0.5} at 1/2 for the wide item.
  EXPECT_NEAR(repaired.objective, 1.5, 1e-6);
}

TEST(ConfigLpSolver, ColgenHeightCapInfeasibilityIsCertified) {
  const auto problem = make_problem(cap_test_instance(62));
  ConfigLpOptions options;
  options.use_column_generation = true;
  ConfigLpSolver solver(problem, options);
  const auto base = solver.solve();
  ASSERT_TRUE(base.feasible);
  ASSERT_GT(base.objective, 0.1);
  // A cap below the optimum is infeasible for the full master too; the
  // Farkas loop must terminate with that verdict (pricing every candidate
  // column against the certificate and finding none), matching the
  // enumeration-mode ground truth.
  const auto pruned = solver.resolve_with_height_cap(base.objective * 0.5);
  EXPECT_EQ(pruned.status, lp::SolveStatus::Infeasible);
  EXPECT_EQ(pruned.colgen_warm_phase1_iterations, 0);
  ConfigLpSolver enumerated(problem);
  ASSERT_TRUE(enumerated.solve().feasible);
  EXPECT_EQ(
      enumerated.resolve_with_height_cap(base.objective * 0.5).status,
      lp::SolveStatus::Infeasible);
  // The colgen solver state survives the certified probe.
  const auto recovered =
      solver.resolve_with_height_cap(base.objective + 1.0);
  verify_fractional(problem, recovered);
  EXPECT_NEAR(recovered.objective, base.objective, 1e-6);
  EXPECT_EQ(recovered.colgen_warm_phase1_iterations, 0);
}

TEST(ConfigLpSolver, PenalizedPatternEscapeColumnIsPriced) {
  // Minimal concrete instance (found by differential search) where the
  // node optimum under a forbidden pattern needs a column that *adds* a
  // zero-dual width to the penalized pattern: forbidding {0.45, 0.45} in
  // phase 1 makes {0.45, 0.45, 0.1} the only way to keep the objective at
  // 7/6, and the 0.1 width prices at value 0 (its demand rides along for
  // free), so the skip-non-positive DFS pruning would hide it and colgen
  // would report 4/3 — a wrong node bound for branch and price.
  Instance ins = items_of({{0.1, 1.0, 0.0},
                           {0.3, 1.0, 1.0},
                           {0.3, 1.0, 1.0},
                           {0.45, 1.0, 1.0}});
  const auto problem = make_problem(ins);
  ASSERT_EQ(problem.widths,
            (std::vector<double>{0.45, 0.3, 0.1}));
  BranchPredicate forbid;
  forbid.kind = BranchPredicate::Kind::Pattern;
  forbid.phase = 1;
  forbid.counts = {2, 0, 0};
  ConfigLpOptions cgo;
  cgo.use_column_generation = true;
  ConfigLpSolver cg(problem, cgo);
  ASSERT_TRUE(cg.solve().feasible);
  cg.add_branch_row(forbid, lp::Sense::LE, 0.0);
  const auto pruned = cg.resolve();
  ASSERT_TRUE(pruned.feasible);
  EXPECT_NEAR(pruned.objective, 7.0 / 6.0, 1e-6);
  EXPECT_EQ(pruned.colgen_warm_phase1_iterations, 0);
}

TEST(ConfigLpSolver, PenalizedPatternPricingStaysExact) {
  // Pattern predicates are non-monotone: with an LE (negative-dual) row
  // on pattern P, pricing can need a column that *adds* a non-positive
  // value width to P to escape the penalty. The DFS's skip-non-positive
  // pruning must stand down while such a row applies, or colgen node
  // bounds drift above the enumeration ground truth. Differential sweep:
  // forbid (LE 0) each pattern in the fractional support, in both modes.
  for (const std::uint64_t seed : {2u, 9u, 14u, 27u, 41u}) {
    Rng rng(seed);
    const double width_pool[] = {0.45, 0.4, 0.3, 0.25, 0.2, 0.15};
    Instance ins;
    const std::size_t n = 6 + seed % 4;
    for (std::size_t i = 0; i < n; ++i) {
      ins.add_item(width_pool[rng.uniform_int(0, 5)],
                   static_cast<double>(rng.uniform_int(1, 2)),
                   static_cast<double>(rng.uniform_int(0, 1)));
    }
    const auto problem = make_problem(ins);
    ConfigLpOptions colgen_options;
    colgen_options.use_column_generation = true;
    ConfigLpSolver cg(problem, colgen_options);
    const auto cg_base = cg.solve();
    ASSERT_TRUE(cg_base.feasible);
    ConfigLpSolver full(problem);
    ASSERT_TRUE(full.solve().feasible);

    std::vector<int> cg_rows;
    std::vector<int> full_rows;
    for (const Slice& s : cg_base.slices) {
      BranchPredicate pattern;
      pattern.kind = BranchPredicate::Kind::Pattern;
      pattern.phase = static_cast<int>(s.phase);
      pattern.counts = s.config.counts;
      cg_rows.push_back(cg.add_branch_row(pattern, lp::Sense::LE, 0.0));
      full_rows.push_back(full.add_branch_row(pattern, lp::Sense::LE, 0.0));
      const auto pruned = cg.resolve();
      const auto truth = full.resolve();
      ASSERT_EQ(pruned.status, truth.status)
          << "seed=" << seed << " slice phase=" << s.phase;
      if (truth.feasible) {
        EXPECT_NEAR(pruned.objective, truth.objective,
                    1e-6 * (1.0 + truth.objective))
            << "seed=" << seed;
        EXPECT_EQ(pruned.colgen_warm_phase1_iterations, 0);
      }
      // Relax again so the next pattern is tested in isolation.
      cg.deactivate_branch_row(cg_rows.back());
      full.deactivate_branch_row(full_rows.back());
    }
  }
}

TEST(ConfigLpSolver, PairBranchRowsSteerBothDirectionsWarm) {
  // Ryan–Foster shape: force the {0.4, 0.4} pair out, then force it in,
  // on one shared warm master; both directions re-solve without phase 1
  // and match an enumeration-mode cold solve.
  const Instance ins =
      items_of({{0.4, 1.0, 0.0}, {0.4, 1.0, 0.0}, {0.4, 1.0, 0.0}});
  const auto problem = make_problem(ins);
  BranchPredicate pair;
  pair.kind = BranchPredicate::Kind::PairTogether;
  pair.phase = 0;
  pair.width_a = 0;
  pair.width_b = 0;  // same width twice: counts[0] >= 2
  for (const bool colgen : {true, false}) {
    ConfigLpOptions options;
    options.use_column_generation = colgen;
    ConfigLpSolver solver(problem, options);
    const auto base = solver.solve();
    ASSERT_TRUE(base.feasible);
    EXPECT_NEAR(base.objective, 1.5, 1e-6);  // the fractional pair split
    const int row = solver.add_branch_row(pair, lp::Sense::LE, 0.0);
    const auto forbidden = solver.resolve();
    verify_fractional(problem, forbidden);
    EXPECT_NEAR(forbidden.objective, 3.0, 1e-6) << "colgen=" << colgen;
    EXPECT_EQ(forbidden.colgen_warm_phase1_iterations, 0);
    // Deactivating the row restores the fractional optimum.
    solver.deactivate_branch_row(row);
    const auto restored = solver.resolve();
    verify_fractional(problem, restored);
    EXPECT_NEAR(restored.objective, 1.5, 1e-6);
    // The GE direction: at least two units of pair height.
    solver.add_branch_row(pair, lp::Sense::GE, 2.0);
    const auto forced = solver.resolve();
    verify_fractional(problem, forced);
    EXPECT_GE(forced.objective, 2.0 - 1e-6);
    EXPECT_EQ(forced.colgen_warm_phase1_iterations, 0);
  }
}

}  // namespace
}  // namespace stripack::release
