#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>

#include "lp/colgen.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace stripack::lp {
namespace {

constexpr double kTol = 1e-6;

// Certifies optimality of a claimed solution: primal feasibility, dual
// feasibility (non-negative reduced costs), and strong duality.
void certify_optimal(const Model& model, const Solution& solution) {
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  // Primal feasibility.
  const auto activity = model.row_activity(solution.x);
  double dual_objective = 0.0;
  for (int r = 0; r < model.num_rows(); ++r) {
    switch (model.row_sense(r)) {
      case Sense::LE:
        EXPECT_LE(activity[r], model.row_rhs(r) + kTol) << "row " << r;
        break;
      case Sense::GE:
        EXPECT_GE(activity[r], model.row_rhs(r) - kTol) << "row " << r;
        break;
      case Sense::EQ:
        EXPECT_NEAR(activity[r], model.row_rhs(r), kTol) << "row " << r;
        break;
    }
    dual_objective += solution.duals[r] * model.row_rhs(r);
  }
  for (const double v : solution.x) EXPECT_GE(v, -kTol);
  // Dual feasibility: reduced costs of all columns are >= 0 for a minimum.
  for (int c = 0; c < model.num_cols(); ++c) {
    double rc = model.column_cost(c);
    for (const RowEntry& e : model.column_entries(c)) {
      rc -= solution.duals[e.row] * e.coef;
    }
    EXPECT_GE(rc, -kTol) << "column " << c;
  }
  // Strong duality.
  EXPECT_NEAR(solution.objective, dual_objective,
              kTol * (1 + std::fabs(dual_objective)));
  EXPECT_NEAR(solution.objective, model.objective_value(solution.x), kTol);
}

// ------------------------------------------------------------- basic cases
TEST(Simplex, TextbookMaximumAsMinimum) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => (2, 6), value 36.
  Model m;
  const int r1 = m.add_row(Sense::LE, 4);
  const int r2 = m.add_row(Sense::LE, 12);
  const int r3 = m.add_row(Sense::LE, 18);
  const RowEntry x_entries[] = {{r1, 1.0}, {r3, 3.0}};
  const RowEntry y_entries[] = {{r2, 2.0}, {r3, 2.0}};
  m.add_column(-3.0, x_entries, "x");
  m.add_column(-5.0, y_entries, "y");
  const Solution s = solve(m);
  certify_optimal(m, s);
  EXPECT_NEAR(s.objective, -36.0, kTol);
  EXPECT_NEAR(s.x[0], 2.0, kTol);
  EXPECT_NEAR(s.x[1], 6.0, kTol);
}

TEST(Simplex, CoveringProblem) {
  // min x + y s.t. x + 2y >= 4, 3x + y >= 6 => intersection (1.6, 1.2).
  Model m;
  const int r1 = m.add_row(Sense::GE, 4);
  const int r2 = m.add_row(Sense::GE, 6);
  const RowEntry x_entries[] = {{r1, 1.0}, {r2, 3.0}};
  const RowEntry y_entries[] = {{r1, 2.0}, {r2, 1.0}};
  m.add_column(1.0, x_entries, "x");
  m.add_column(1.0, y_entries, "y");
  const Solution s = solve(m);
  certify_optimal(m, s);
  EXPECT_NEAR(s.objective, 2.8, kTol);
}

TEST(Simplex, EqualityConstraint) {
  // min x + 2y s.t. x + y = 3, x <= 2 => x=2, y=1, objective 4.
  Model m;
  const int req = m.add_row(Sense::EQ, 3);
  const int rle = m.add_row(Sense::LE, 2);
  const RowEntry x_entries[] = {{req, 1.0}, {rle, 1.0}};
  const RowEntry y_entries[] = {{req, 1.0}};
  m.add_column(1.0, x_entries, "x");
  m.add_column(2.0, y_entries, "y");
  const Solution s = solve(m);
  certify_optimal(m, s);
  EXPECT_NEAR(s.objective, 4.0, kTol);
}

TEST(Simplex, NegativeRhsIsNormalized) {
  // x <= -1 with x >= 0 is infeasible; -x <= -1 (i.e. x >= 1) is fine.
  Model feasible;
  const int r = feasible.add_row(Sense::LE, -1);
  const RowEntry e[] = {{r, -1.0}};
  feasible.add_column(1.0, e, "x");
  const Solution s = solve(feasible);
  certify_optimal(feasible, s);
  EXPECT_NEAR(s.objective, 1.0, kTol);
}

TEST(Simplex, DetectsInfeasible) {
  // x >= 2 and x <= 1.
  Model m;
  const int lo = m.add_row(Sense::GE, 2);
  const int hi = m.add_row(Sense::LE, 1);
  const RowEntry e[] = {{lo, 1.0}, {hi, 1.0}};
  m.add_column(0.0, e, "x");
  EXPECT_EQ(solve(m).status, SolveStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // min -x s.t. x >= 1: x can grow forever.
  Model m;
  const int r = m.add_row(Sense::GE, 1);
  const RowEntry e[] = {{r, 1.0}};
  m.add_column(-1.0, e, "x");
  EXPECT_EQ(solve(m).status, SolveStatus::Unbounded);
}

TEST(Simplex, DegenerateVertexStillSolves) {
  // Classic degeneracy: redundant constraints meeting at one vertex.
  Model m;
  const int r1 = m.add_row(Sense::LE, 1);
  const int r2 = m.add_row(Sense::LE, 1);
  const int r3 = m.add_row(Sense::LE, 2);
  const RowEntry x_entries[] = {{r1, 1.0}, {r3, 1.0}};
  const RowEntry y_entries[] = {{r2, 1.0}, {r3, 1.0}};
  m.add_column(-1.0, x_entries, "x");
  m.add_column(-1.0, y_entries, "y");
  const Solution s = solve(m);
  certify_optimal(m, s);
  EXPECT_NEAR(s.objective, -2.0, kTol);
}

TEST(Simplex, BealeCyclingExampleTerminates) {
  // Beale's classic cycling LP: with naive Dantzig pricing and no
  // anti-cycling rule the tableau simplex cycles forever. Our solver must
  // terminate at the optimum (objective -0.05).
  //   min -0.75 x1 + 150 x2 - 0.02 x3 + 6 x4
  //   s.t. 0.25 x1 - 60 x2 - 0.04 x3 + 9 x4 <= 0
  //        0.50 x1 - 90 x2 - 0.02 x3 + 3 x4 <= 0
  //        x3 <= 1
  Model m;
  const int r1 = m.add_row(Sense::LE, 0);
  const int r2 = m.add_row(Sense::LE, 0);
  const int r3 = m.add_row(Sense::LE, 1);
  const RowEntry x1[] = {{r1, 0.25}, {r2, 0.5}};
  const RowEntry x2[] = {{r1, -60.0}, {r2, -90.0}};
  const RowEntry x3[] = {{r1, -0.04}, {r2, -0.02}, {r3, 1.0}};
  const RowEntry x4[] = {{r1, 9.0}, {r2, 3.0}};
  m.add_column(-0.75, x1);
  m.add_column(150.0, x2);
  m.add_column(-0.02, x3);
  m.add_column(6.0, x4);
  const Solution s = solve(m);
  certify_optimal(m, s);
  EXPECT_NEAR(s.objective, -0.05, 1e-9);
}

TEST(Simplex, ZeroColumnVariableStaysZero) {
  Model m;
  m.add_row(Sense::LE, 1);
  m.add_column(5.0, {}, "lonely");  // cost 5, no constraints: stays 0
  const Solution s = solve(m);
  certify_optimal(m, s);
  EXPECT_NEAR(s.x[0], 0.0, kTol);
}

TEST(Simplex, RejectsDuplicateRowEntries) {
  Model m;
  const int r = m.add_row(Sense::LE, 1);
  const RowEntry dup[] = {{r, 1.0}, {r, 2.0}};
  EXPECT_THROW(m.add_column(0.0, dup), ContractViolation);
}

TEST(Simplex, BasicSolutionHasAtMostMRowsNonzeros) {
  // Lemma 3.3's structural fact: a basic solution has <= #rows nonzeros.
  Model m;
  const int r1 = m.add_row(Sense::GE, 3);
  const int r2 = m.add_row(Sense::GE, 2);
  for (int c = 0; c < 20; ++c) {
    const RowEntry e[] = {{r1, 1.0 + 0.01 * c}, {r2, 2.0 - 0.01 * c}};
    m.add_column(1.0 + 0.001 * c, e);
  }
  const Solution s = solve(m);
  certify_optimal(m, s);
  std::size_t nonzeros = 0;
  for (double v : s.x) nonzeros += v > kTol;
  EXPECT_LE(nonzeros, 2u);
  // The support is carried by the reported basis.
  EXPECT_LE(s.basic_columns.size(), 2u);
  for (std::size_t c = 0; c < s.x.size(); ++c) {
    if (s.x[c] > kTol) {
      EXPECT_NE(std::find(s.basic_columns.begin(), s.basic_columns.end(),
                          static_cast<int>(c)),
                s.basic_columns.end());
    }
  }
}

// ------------------------------------------------- warm starts and eta file
namespace {

// Random covering/packing LP mirroring the configuration LP's shape.
Model random_model(Rng& rng, int rows, int cols) {
  Model m;
  for (int r = 0; r < rows; ++r) {
    const double rhs = rng.uniform(-2.0, 6.0);
    const Sense sense = r % 3 == 0 ? Sense::GE : Sense::LE;
    m.add_row(sense,
              sense == Sense::GE ? std::max(0.0, rhs) : std::fabs(rhs) + 1.0);
  }
  for (int c = 0; c < cols; ++c) {
    std::vector<RowEntry> entries;
    for (int r = 0; r < rows; ++r) {
      if (rng.bernoulli(0.4)) entries.push_back({r, rng.uniform(0.1, 2.0)});
    }
    m.add_column(rng.uniform(0.5, 3.0), entries);
  }
  return m;
}

}  // namespace

TEST(Simplex, WarmStartFromSuppliedBasisReproducesColdOptimum) {
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    Rng rng(seed);
    const Model m = random_model(rng, 10, 30);
    const Solution cold = solve(m);
    if (!cold.optimal()) continue;
    ASSERT_EQ(cold.basis.size(), 10u);
    SimplexOptions warm_options;
    warm_options.initial_basis = cold.basis;
    const Solution warm = solve(m, warm_options);
    certify_optimal(m, warm);
    EXPECT_NEAR(warm.objective, cold.objective, 1e-9) << "seed=" << seed;
    // The supplied basis is optimal and feasible: no phase 1, no pivots.
    EXPECT_EQ(warm.phase1_iterations, 0) << "seed=" << seed;
    EXPECT_EQ(warm.iterations, 0) << "seed=" << seed;
  }
}

TEST(Simplex, BogusInitialBasisFallsBackToColdStart) {
  Rng rng(99);
  const Model m = random_model(rng, 8, 20);
  const Solution cold = solve(m);
  ASSERT_TRUE(cold.optimal());
  // Singular basis: the same slack in every row slot.
  SimplexOptions bogus;
  bogus.initial_basis.assign(8, slack_code(0));
  const Solution s = solve(m, bogus);
  certify_optimal(m, s);
  EXPECT_NEAR(s.objective, cold.objective, 1e-8);
  // Wrong-size basis is rejected the same way.
  SimplexOptions short_basis;
  short_basis.initial_basis.assign(3, slack_code(0));
  const Solution s2 = solve(m, short_basis);
  certify_optimal(m, s2);
  EXPECT_NEAR(s2.objective, cold.objective, 1e-8);
}

TEST(Simplex, LongEtaChainsAgreeWithEagerRefactorization) {
  // refactor_interval = 1 re-inverts after every pivot (the eta file never
  // has update etas); a huge interval exercises the longest product-form
  // chains. Both must certify and agree.
  for (const std::uint64_t seed : {5u, 15u, 25u, 35u, 45u}) {
    Rng rng(seed);
    const Model m = random_model(rng, 12, 40);
    SimplexOptions eager;
    eager.refactor_interval = 1;
    SimplexOptions lazy;
    lazy.refactor_interval = 1 << 30;
    const Solution a = solve(m, eager);
    const Solution b = solve(m, lazy);
    ASSERT_EQ(a.status, b.status) << "seed=" << seed;
    if (!a.optimal()) continue;
    certify_optimal(m, a);
    certify_optimal(m, b);
    EXPECT_NEAR(a.objective, b.objective, 1e-7) << "seed=" << seed;
  }
}

TEST(Simplex, ForcedBlandRuleStillFindsTheOptimum) {
  // Beale's cycling LP under Bland's rule from the very first pivot: the
  // anti-cycling machinery must terminate at the same optimum.
  Model m;
  const int r1 = m.add_row(Sense::LE, 0);
  const int r2 = m.add_row(Sense::LE, 0);
  const int r3 = m.add_row(Sense::LE, 1);
  const RowEntry x1[] = {{r1, 0.25}, {r2, 0.5}};
  const RowEntry x2[] = {{r1, -60.0}, {r2, -90.0}};
  const RowEntry x3[] = {{r1, -0.04}, {r2, -0.02}, {r3, 1.0}};
  const RowEntry x4[] = {{r1, 9.0}, {r2, 3.0}};
  m.add_column(-0.75, x1);
  m.add_column(150.0, x2);
  m.add_column(-0.02, x3);
  m.add_column(6.0, x4);
  SimplexOptions options;
  options.bland = true;
  const Solution s = solve(m, options);
  certify_optimal(m, s);
  EXPECT_NEAR(s.objective, -0.05, 1e-9);
}

TEST(SimplexEngine, WarmResolveAfterAddingColumnsSkipsPhase1) {
  // min x s.t. x >= 4 — then a cheaper covering column arrives.
  Model m;
  const int r = m.add_row(Sense::GE, 4);
  const RowEntry x_entries[] = {{r, 1.0}};
  m.add_column(1.0, x_entries, "x");
  SimplexEngine engine(m);
  const Solution first = engine.solve();
  ASSERT_TRUE(first.optimal());
  EXPECT_NEAR(first.objective, 4.0, kTol);
  EXPECT_GT(first.phase1_iterations, 0);

  const RowEntry y_entries[] = {{r, 2.0}};
  m.add_column(1.0, y_entries, "y");
  engine.sync_columns();
  const Solution second = engine.solve();
  ASSERT_TRUE(second.optimal());
  certify_optimal(m, second);
  EXPECT_NEAR(second.objective, 2.0, kTol);
  EXPECT_EQ(second.phase1_iterations, 0);  // warm restart: no artificials
}

// ------------------------------------------------------------ random duals
// Random LPs with known-feasible primal region; certify every optimum.
class SimplexRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexRandomTest, RandomCoveringPackingCertified) {
  Rng rng(GetParam());
  Model m;
  const int rows = 8;
  std::vector<int> row_ids;
  for (int r = 0; r < rows; ++r) {
    // Mix senses; keep rhs signs mixed too.
    const double rhs = rng.uniform(-2.0, 6.0);
    const Sense sense = r % 3 == 0 ? Sense::GE : Sense::LE;
    row_ids.push_back(m.add_row(sense, sense == Sense::GE
                                           ? std::max(0.0, rhs)
                                           : std::fabs(rhs) + 1.0));
  }
  for (int c = 0; c < 20; ++c) {
    std::vector<RowEntry> entries;
    for (int r = 0; r < rows; ++r) {
      if (rng.bernoulli(0.4)) {
        entries.push_back({row_ids[r], rng.uniform(0.1, 2.0)});
      }
    }
    m.add_column(rng.uniform(0.5, 3.0), entries);
  }
  const Solution s = solve(m);
  // These LPs are always feasible (x = big multiples cover GE rows)?
  // Not necessarily within LE rows; accept infeasible but certify optima.
  if (s.status == SolveStatus::Optimal) {
    certify_optimal(m, s);
  } else {
    EXPECT_EQ(s.status, SolveStatus::Infeasible);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u,
                                           707u, 808u));

// ------------------------------------------------------------------ colgen
namespace {

// Cutting-stock-style oracle: widths 3,4,5 into capacity 9; columns are
// patterns; demands 20,10,5. Known optimum: LP value 85/6 ~ 14.167
// (computed below against full enumeration instead of a constant).
class PatternOracle final : public PricingOracle {
 public:
  explicit PatternOracle(const std::vector<double>& widths, double capacity)
      : widths_(widths), capacity_(capacity) {}

  std::vector<PricedColumn> price(std::span<const double> duals,
                                  double tol) override {
    // Enumerate all patterns; return the most violated one.
    std::vector<int> counts(widths_.size(), 0);
    std::vector<PricedColumn> best;
    double best_rc = -std::max(tol, 1e-9);
    enumerate(0, 0.0, counts, duals, best, best_rc);
    return best;
  }

 private:
  void enumerate(std::size_t i, double used, std::vector<int>& counts,
                 std::span<const double> duals,
                 std::vector<PricedColumn>& best, double& best_rc) {
    if (i == widths_.size()) {
      double rc = 1.0;
      bool any = false;
      for (std::size_t k = 0; k < counts.size(); ++k) {
        rc -= duals[k] * counts[k];
        any |= counts[k] > 0;
      }
      if (any && rc < best_rc) {
        best_rc = rc;
        PricedColumn col;
        col.cost = 1.0;
        for (std::size_t k = 0; k < counts.size(); ++k) {
          if (counts[k] > 0) {
            col.entries.push_back(
                {static_cast<int>(k), static_cast<double>(counts[k])});
          }
        }
        best.assign(1, col);
      }
      return;
    }
    const int max_c = static_cast<int>((capacity_ - used) / widths_[i] + 1e-9);
    for (int c = 0; c <= max_c; ++c) {
      counts[i] = c;
      enumerate(i + 1, used + c * widths_[i], counts, duals, best, best_rc);
    }
    counts[i] = 0;
  }

  std::vector<double> widths_;
  double capacity_;
};

}  // namespace

TEST(Colgen, MatchesFullEnumerationOnCuttingStock) {
  const std::vector<double> widths{3.0, 4.0, 5.0};
  const std::vector<double> demand{20.0, 10.0, 5.0};
  const double capacity = 9.0;

  // Full enumeration model.
  Model full;
  for (double d : demand) full.add_row(Sense::GE, d);
  std::vector<int> counts(widths.size(), 0);
  // All patterns with sum <= 9.
  std::function<void(std::size_t, double)> rec = [&](std::size_t i,
                                                     double used) {
    if (i == widths.size()) {
      std::vector<RowEntry> entries;
      bool any = false;
      for (std::size_t k = 0; k < widths.size(); ++k) {
        if (counts[k] > 0) {
          entries.push_back(
              {static_cast<int>(k), static_cast<double>(counts[k])});
          any = true;
        }
      }
      if (any) full.add_column(1.0, entries);
      return;
    }
    const int max_c = static_cast<int>((capacity - used) / widths[i] + 1e-9);
    for (int c = 0; c <= max_c; ++c) {
      counts[i] = c;
      rec(i + 1, used + c * widths[i]);
    }
    counts[i] = 0;
  };
  rec(0, 0.0);
  const Solution full_solution = solve(full);
  certify_optimal(full, full_solution);

  // Column generation from singleton seeds.
  Model master;
  for (double d : demand) master.add_row(Sense::GE, d);
  for (std::size_t k = 0; k < widths.size(); ++k) {
    const RowEntry e[] = {{static_cast<int>(k), 1.0}};
    master.add_column(1.0, e);
  }
  PatternOracle oracle(widths, capacity);
  const ColgenResult cg = solve_with_column_generation(master, oracle);
  ASSERT_EQ(cg.solution.status, SolveStatus::Optimal);
  EXPECT_NEAR(cg.solution.objective, full_solution.objective, 1e-6);
  EXPECT_GT(cg.columns_added, 0);
  // The engine restarts every round from the previous optimal basis: the
  // cold first solve is the only one that may need phase 1.
  EXPECT_GT(cg.rounds, 1);
  EXPECT_EQ(cg.warm_phase1_iterations, 0);
  EXPECT_GT(cg.total_iterations, 0);
}

}  // namespace
}  // namespace stripack::lp
