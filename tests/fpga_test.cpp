#include <gtest/gtest.h>

#include "core/validate.hpp"
#include "fpga/adapters.hpp"
#include "fpga/simulator.hpp"
#include "fpga/workloads.hpp"
#include "precedence/dc.hpp"
#include "precedence/list_schedule.hpp"
#include "test_support.hpp"

namespace stripack::fpga {
namespace {

TaskSet two_task_chain() {
  TaskSet set;
  set.tasks.push_back(Task{"a", 2, 1.0, 0.0});
  set.tasks.push_back(Task{"b", 2, 1.0, 0.0});
  set.deps = Dag(2);
  set.deps.add_edge(0, 1);
  return set;
}

TEST(Adapters, TaskSetToInstanceScalesColumns) {
  const TaskSet set = two_task_chain();
  const Device device{8, 0.0, true};
  const Instance ins = to_instance(set, device);
  EXPECT_EQ(ins.size(), 2u);
  EXPECT_DOUBLE_EQ(ins.item(0).width(), 0.25);
  EXPECT_DOUBLE_EQ(ins.item(0).height(), 1.0);
  EXPECT_TRUE(ins.dag().has_edge(0, 1));
}

TEST(Adapters, PlacementRoundTripsToSchedule) {
  const TaskSet set = two_task_chain();
  const Device device{8, 0.0, true};
  const Placement placement{{0.25, 0.0}, {0.5, 1.0}};
  const Schedule schedule = to_schedule(set, device, placement);
  EXPECT_EQ(schedule.entries[0].first_column, 2);
  EXPECT_EQ(schedule.entries[1].first_column, 4);
  EXPECT_DOUBLE_EQ(schedule.entries[1].start, 1.0);
  EXPECT_DOUBLE_EQ(schedule.makespan(set), 2.0);
}

TEST(Simulator, AcceptsValidSchedule) {
  const TaskSet set = two_task_chain();
  const Device device{8, 0.0, true};
  Schedule schedule;
  schedule.entries = {{0, 0.0}, {0, 1.0}};
  const SimResult result = simulate(set, device, schedule);
  EXPECT_TRUE(result.ok) << (result.violations.empty()
                                 ? ""
                                 : result.violations[0].detail);
  EXPECT_DOUBLE_EQ(result.makespan, 2.0);
  EXPECT_NEAR(result.utilization, 4.0 / 16.0, 1e-9);
}

TEST(Simulator, CatchesColumnConflict) {
  TaskSet set;
  set.tasks.push_back(Task{"a", 4, 1.0, 0.0});
  set.tasks.push_back(Task{"b", 4, 1.0, 0.0});
  set.deps = Dag(2);
  const Device device{8, 0.0, true};
  Schedule overlapping;
  overlapping.entries = {{0, 0.0}, {2, 0.5}};  // columns 2..5 clash with 0..3
  EXPECT_FALSE(simulate(set, device, overlapping).ok);
  Schedule disjoint;
  disjoint.entries = {{0, 0.0}, {4, 0.5}};
  EXPECT_TRUE(simulate(set, device, disjoint).ok);
}

TEST(Simulator, CatchesDependencyViolation) {
  const TaskSet set = two_task_chain();
  const Device device{8, 0.0, true};
  Schedule bad;
  bad.entries = {{0, 0.0}, {4, 0.5}};  // b starts before a ends
  const SimResult result = simulate(set, device, bad);
  EXPECT_FALSE(result.ok);
}

TEST(Simulator, CatchesArrivalViolation) {
  TaskSet set;
  set.tasks.push_back(Task{"late", 1, 1.0, 5.0});
  set.deps = Dag(1);
  const Device device{4, 0.0, true};
  Schedule early;
  early.entries = {{0, 1.0}};
  EXPECT_FALSE(simulate(set, device, early).ok);
}

TEST(Simulator, CatchesOutOfDevicePlacement) {
  TaskSet set;
  set.tasks.push_back(Task{"wide", 4, 1.0, 0.0});
  set.deps = Dag(1);
  const Device device{4, 0.0, true};
  Schedule off;
  off.entries = {{1, 0.0}};  // columns 1..4, device has 0..3
  EXPECT_FALSE(simulate(set, device, off).ok);
}

TEST(Reconfiguration, AddsSerializedOverhead) {
  // Two independent tasks on disjoint columns; reconfiguration times
  // serialize through the single port.
  TaskSet set;
  set.tasks.push_back(Task{"a", 2, 1.0, 0.0});
  set.tasks.push_back(Task{"b", 2, 1.0, 0.0});
  set.deps = Dag(2);
  Device device{8, 0.1, true};
  Schedule planned;
  planned.entries = {{0, 0.0}, {4, 0.0}};
  const auto executed = execute_with_reconfiguration(set, device, planned);
  EXPECT_TRUE(executed.result.ok);
  // Port serializes: first reconfig [0,0.2), second [0.2,0.4).
  EXPECT_NEAR(executed.realized.entries[0].start, 0.2, 1e-9);
  EXPECT_NEAR(executed.realized.entries[1].start, 0.4, 1e-9);
  EXPECT_NEAR(executed.result.reconfig_busy, 0.4, 1e-9);
}

TEST(Reconfiguration, ZeroOverheadKeepsGeometry) {
  const TaskSet set = two_task_chain();
  const Device device{8, 0.0, true};
  Schedule planned;
  planned.entries = {{0, 0.0}, {0, 1.0}};
  const auto executed = execute_with_reconfiguration(set, device, planned);
  EXPECT_TRUE(executed.result.ok);
  EXPECT_NEAR(executed.result.makespan, 2.0, 1e-9);
}

TEST(Workloads, JpegPipelineShape) {
  const TaskSet set = jpeg_pipeline(4);
  // 4 stripes x 4 stages + huffman.
  EXPECT_EQ(set.size(), 17u);
  EXPECT_FALSE(set.deps.has_cycle());
  EXPECT_EQ(set.deps.sinks().size(), 1u);  // huffman
}

TEST(Workloads, JpegSchedulesEndToEndWithDc) {
  const TaskSet set = jpeg_pipeline(3);
  const Device device{16, 0.0, true};
  const Instance ins = to_instance(set, device);
  const DcResult packed = dc_pack(ins);
  ASSERT_TRUE(
      stripack::testing::placement_valid(ins, packed.packing.placement));
  const Schedule schedule = to_schedule(set, device, packed.packing.placement);
  const SimResult sim = simulate(set, device, schedule);
  EXPECT_TRUE(sim.ok) << (sim.violations.empty() ? ""
                                                 : sim.violations[0].detail);
  EXPECT_NEAR(sim.makespan, packed.packing.height(), 1e-6);
}

TEST(Workloads, RandomMixSchedulesWithListScheduler) {
  Rng rng(9);
  const TaskSet set = random_task_mix(40, 6, 4, rng);
  const Device device{12, 0.0, true};
  const Instance ins = to_instance(set, device);
  const Packing packed = list_schedule(ins);
  ASSERT_TRUE(stripack::testing::placement_valid(ins, packed.placement));
  const Schedule schedule = to_schedule(set, device, packed.placement);
  EXPECT_TRUE(simulate(set, device, schedule).ok);
}

}  // namespace
}  // namespace stripack::fpga
