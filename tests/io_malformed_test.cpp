// Hostile-input matrix for io/instance_io: the readers sit on a trust
// boundary (stripack_serve feeds them raw stdin), so every malformed
// document must end in a ContractViolation naming the offending line —
// never a crash, an OOM pre-reserve, a hang, or a silently mis-parsed
// instance. Each case here failed (crash, wrap-around reserve, or
// silent zero) on the pre-hardening reader.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "io/instance_io.hpp"
#include "util/assert.hpp"

namespace stripack::io {
namespace {

[[nodiscard]] std::string read_error(const std::string& text) {
  std::istringstream is(text);
  try {
    const Instance instance = read_instance(is);
    (void)instance;
  } catch (const ContractViolation& e) {
    return e.what();
  }
  return {};
}

[[nodiscard]] std::string placement_error(const std::string& text) {
  std::istringstream is(text);
  try {
    const Placement placement = read_placement(is);
    (void)placement;
  } catch (const ContractViolation& e) {
    return e.what();
  }
  return {};
}

constexpr const char* kGood =
    "stripack-instance v1\n"
    "strip_width 10\n"
    "items 2\n"
    "4 2 0\n"
    "6 2 1\n"
    "edges 1\n"
    "0 1\n";

TEST(IoMalformed, GoodDocumentStillParses) {
  std::istringstream is(kGood);
  const Instance instance = read_instance(is);
  EXPECT_EQ(instance.size(), 2u);
  EXPECT_EQ(instance.dag().edges().size(), 1u);
}

TEST(IoMalformed, NegativeItemCountIsRejectedNotWrapped) {
  // `ss >> size_t` on "-5" wraps modulo 2^64 without setting failbit;
  // the unhardened reader pre-reserved accordingly.
  const std::string err = read_error(
      "stripack-instance v1\nstrip_width 10\nitems -5\n");
  EXPECT_NE(err.find("items count"), std::string::npos) << err;
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
}

TEST(IoMalformed, AbsurdItemCountIsRejectedBeforeReserve) {
  const std::string err = read_error(
      "stripack-instance v1\nstrip_width 10\nitems 99999999999999\n");
  EXPECT_NE(err.find("items count"), std::string::npos) << err;
}

TEST(IoMalformed, NegativeEdgeCountIsRejected) {
  const std::string err = read_error(
      "stripack-instance v1\nstrip_width 10\nitems 1\n1 1 0\nedges -1\n");
  EXPECT_NE(err.find("edges count"), std::string::npos) << err;
  EXPECT_NE(err.find("line 5"), std::string::npos) << err;
}

TEST(IoMalformed, TruncatedAfterHeaderNamesNextLine) {
  const std::string err = read_error("stripack-instance v1\n");
  EXPECT_NE(err.find("unexpected end of input"), std::string::npos) << err;
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

TEST(IoMalformed, TruncatedItemListIsAnError) {
  const std::string err = read_error(
      "stripack-instance v1\nstrip_width 10\nitems 3\n4 2 0\n");
  EXPECT_NE(err.find("unexpected end of input"), std::string::npos) << err;
}

TEST(IoMalformed, NonNumericItemFieldNamesItsLine) {
  const std::string err = read_error(
      "stripack-instance v1\nstrip_width 10\nitems 1\n4 banana 0\n");
  EXPECT_NE(err.find("height"), std::string::npos) << err;
  EXPECT_NE(err.find("line 4"), std::string::npos) << err;
}

TEST(IoMalformed, NonFiniteFieldIsRejected) {
  // istream extraction happily parses "inf"/"nan"; no writer emits them
  // and they poison every downstream comparison.
  const std::string err = read_error(
      "stripack-instance v1\nstrip_width 10\nitems 1\n4 inf 0\n");
  EXPECT_NE(err.find("height"), std::string::npos) << err;
  const std::string err2 = read_error(
      "stripack-instance v1\nstrip_width nan\nitems 1\n4 2 0\n");
  EXPECT_NE(err2.find("strip_width"), std::string::npos) << err2;
}

TEST(IoMalformed, NonPositiveStripWidthIsRejected) {
  const std::string err = read_error(
      "stripack-instance v1\nstrip_width 0\nitems 1\n4 2 0\n");
  EXPECT_NE(err.find("strip_width"), std::string::npos) << err;
}

TEST(IoMalformed, EdgeEndpointOutOfRangeNamesItsLine) {
  const std::string err = read_error(
      "stripack-instance v1\nstrip_width 10\nitems 2\n4 2 0\n6 2 0\n"
      "edges 1\n0 2\n");
  EXPECT_NE(err.find("edge endpoint out of range"), std::string::npos)
      << err;
  EXPECT_NE(err.find("line 7"), std::string::npos) << err;
}

TEST(IoMalformed, NegativeEdgeEndpointIsRejectedNotWrapped) {
  const std::string err = read_error(
      "stripack-instance v1\nstrip_width 10\nitems 2\n4 2 0\n6 2 0\n"
      "edges 1\n-1 1\n");
  EXPECT_NE(err.find("edge endpoint"), std::string::npos) << err;
}

TEST(IoMalformed, WrongHeaderIsAnError) {
  const std::string err = read_error("stripack-placement v1\n");
  EXPECT_NE(err.find("stripack-instance"), std::string::npos) << err;
}

TEST(IoMalformed, PlacementNegativeCountIsRejected) {
  const std::string err =
      placement_error("stripack-placement v1\nitems -3\n");
  EXPECT_NE(err.find("items count"), std::string::npos) << err;
}

TEST(IoMalformed, PlacementNonNumericFieldNamesItsLine) {
  const std::string err =
      placement_error("stripack-placement v1\nitems 1\n0 oops\n");
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
}

TEST(IoMalformed, PlacementTruncationIsAnError) {
  const std::string err =
      placement_error("stripack-placement v1\nitems 2\n0 0\n");
  EXPECT_NE(err.find("unexpected end of input"), std::string::npos) << err;
}

}  // namespace
}  // namespace stripack::io
