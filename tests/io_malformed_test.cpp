// Hostile-input matrix for io/instance_io: the readers sit on a trust
// boundary (stripack_serve feeds them raw stdin), so every malformed
// document must end in a ContractViolation naming the offending line —
// never a crash, an OOM pre-reserve, a hang, or a silently mis-parsed
// instance. Each case here failed (crash, wrap-around reserve, or
// silent zero) on the pre-hardening reader.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "io/instance_io.hpp"
#include "service/solver_service.hpp"
#include "util/assert.hpp"

namespace stripack::io {
namespace {

[[nodiscard]] std::string read_error(const std::string& text) {
  std::istringstream is(text);
  try {
    const Instance instance = read_instance(is);
    (void)instance;
  } catch (const ContractViolation& e) {
    return e.what();
  }
  return {};
}

[[nodiscard]] std::string placement_error(const std::string& text) {
  std::istringstream is(text);
  try {
    const Placement placement = read_placement(is);
    (void)placement;
  } catch (const ContractViolation& e) {
    return e.what();
  }
  return {};
}

constexpr const char* kGood =
    "stripack-instance v1\n"
    "strip_width 10\n"
    "items 2\n"
    "4 2 0\n"
    "6 2 1\n"
    "edges 1\n"
    "0 1\n";

TEST(IoMalformed, GoodDocumentStillParses) {
  std::istringstream is(kGood);
  const Instance instance = read_instance(is);
  EXPECT_EQ(instance.size(), 2u);
  EXPECT_EQ(instance.dag().edges().size(), 1u);
}

TEST(IoMalformed, NegativeItemCountIsRejectedNotWrapped) {
  // `ss >> size_t` on "-5" wraps modulo 2^64 without setting failbit;
  // the unhardened reader pre-reserved accordingly.
  const std::string err = read_error(
      "stripack-instance v1\nstrip_width 10\nitems -5\n");
  EXPECT_NE(err.find("items count"), std::string::npos) << err;
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
}

TEST(IoMalformed, AbsurdItemCountIsRejectedBeforeReserve) {
  const std::string err = read_error(
      "stripack-instance v1\nstrip_width 10\nitems 99999999999999\n");
  EXPECT_NE(err.find("items count"), std::string::npos) << err;
}

TEST(IoMalformed, NegativeEdgeCountIsRejected) {
  const std::string err = read_error(
      "stripack-instance v1\nstrip_width 10\nitems 1\n1 1 0\nedges -1\n");
  EXPECT_NE(err.find("edges count"), std::string::npos) << err;
  EXPECT_NE(err.find("line 5"), std::string::npos) << err;
}

TEST(IoMalformed, TruncatedAfterHeaderNamesNextLine) {
  const std::string err = read_error("stripack-instance v1\n");
  EXPECT_NE(err.find("unexpected end of input"), std::string::npos) << err;
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

TEST(IoMalformed, TruncatedItemListIsAnError) {
  const std::string err = read_error(
      "stripack-instance v1\nstrip_width 10\nitems 3\n4 2 0\n");
  EXPECT_NE(err.find("unexpected end of input"), std::string::npos) << err;
}

TEST(IoMalformed, NonNumericItemFieldNamesItsLine) {
  const std::string err = read_error(
      "stripack-instance v1\nstrip_width 10\nitems 1\n4 banana 0\n");
  EXPECT_NE(err.find("height"), std::string::npos) << err;
  EXPECT_NE(err.find("line 4"), std::string::npos) << err;
}

TEST(IoMalformed, NonFiniteFieldIsRejected) {
  // istream extraction happily parses "inf"/"nan"; no writer emits them
  // and they poison every downstream comparison.
  const std::string err = read_error(
      "stripack-instance v1\nstrip_width 10\nitems 1\n4 inf 0\n");
  EXPECT_NE(err.find("height"), std::string::npos) << err;
  const std::string err2 = read_error(
      "stripack-instance v1\nstrip_width nan\nitems 1\n4 2 0\n");
  EXPECT_NE(err2.find("strip_width"), std::string::npos) << err2;
}

TEST(IoMalformed, NonPositiveStripWidthIsRejected) {
  const std::string err = read_error(
      "stripack-instance v1\nstrip_width 0\nitems 1\n4 2 0\n");
  EXPECT_NE(err.find("strip_width"), std::string::npos) << err;
}

TEST(IoMalformed, EdgeEndpointOutOfRangeNamesItsLine) {
  const std::string err = read_error(
      "stripack-instance v1\nstrip_width 10\nitems 2\n4 2 0\n6 2 0\n"
      "edges 1\n0 2\n");
  EXPECT_NE(err.find("edge endpoint out of range"), std::string::npos)
      << err;
  EXPECT_NE(err.find("line 7"), std::string::npos) << err;
}

TEST(IoMalformed, NegativeEdgeEndpointIsRejectedNotWrapped) {
  const std::string err = read_error(
      "stripack-instance v1\nstrip_width 10\nitems 2\n4 2 0\n6 2 0\n"
      "edges 1\n-1 1\n");
  EXPECT_NE(err.find("edge endpoint"), std::string::npos) << err;
}

TEST(IoMalformed, WrongHeaderIsAnError) {
  const std::string err = read_error("stripack-placement v1\n");
  EXPECT_NE(err.find("stripack-instance"), std::string::npos) << err;
}

TEST(IoMalformed, PlacementNegativeCountIsRejected) {
  const std::string err =
      placement_error("stripack-placement v1\nitems -3\n");
  EXPECT_NE(err.find("items count"), std::string::npos) << err;
}

TEST(IoMalformed, PlacementNonNumericFieldNamesItsLine) {
  const std::string err =
      placement_error("stripack-placement v1\nitems 1\n0 oops\n");
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
}

TEST(IoMalformed, PlacementTruncationIsAnError) {
  const std::string err =
      placement_error("stripack-placement v1\nitems 2\n0 0\n");
  EXPECT_NE(err.find("unexpected end of input"), std::string::npos) << err;
}

/// A sink whose buffer starts rejecting bytes after `capacity` — the
/// stream-level shape of a reader vanishing (SIGPIPE'd pipe) or a disk
/// filling mid-response.
class FailingBuf : public std::stringbuf {
 public:
  explicit FailingBuf(std::size_t capacity) : capacity_(capacity) {}

 protected:
  int overflow(int ch) override {
    if (written_ >= capacity_) return traits_type::eof();
    ++written_;
    return std::stringbuf::overflow(ch);
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    if (written_ >= capacity_) return 0;
    const std::streamsize room = std::min<std::streamsize>(
        n, static_cast<std::streamsize>(capacity_ - written_));
    const std::streamsize put = std::stringbuf::xsputn(s, room);
    written_ += static_cast<std::size_t>(put);
    return put < n ? put : n;
  }

 private:
  std::size_t capacity_;
  std::size_t written_ = 0;
};

TEST(IoMalformed, ServeStreamStopsCleanlyWhenSinkFailsAtFlush) {
  // Two good requests; measure each response's size against a healthy
  // sink first.
  const std::string requests =
      "stripack-instance v1\nstrip_width 10\nitems 2\n4 2 0\n6 2 0\n"
      "edges 0\n"
      "stripack-instance v1\nstrip_width 10\nitems 1\n4 2 0\nedges 0\n";
  std::size_t first_len = 0;
  std::size_t total_len = 0;
  {
    service::SolverService service;
    std::istringstream is(requests);
    std::ostringstream os;
    ASSERT_EQ(service.serve_stream(is, os), 2u);
    const std::string out = os.str();
    total_len = out.size();
    first_len = out.find("stripack-response v1", 1);
    ASSERT_NE(first_len, std::string::npos);
  }
  // A sink that dies between the first and second response: the writer
  // must stop at the failed flush — reporting one fully written response,
  // not hanging or pretending both went out.
  FailingBuf buf(first_len + (total_len - first_len) / 2);
  std::ostream os(&buf);
  service::SolverService service;
  std::istringstream is(requests);
  EXPECT_EQ(service.serve_stream(is, os), 1u);
  EXPECT_FALSE(os.good());

  // A sink dead on arrival writes nothing.
  FailingBuf dead(0);
  std::ostream dead_os(&dead);
  service::SolverService fresh;
  std::istringstream again(requests);
  EXPECT_EQ(fresh.serve_stream(again, dead_os), 0u);
}

}  // namespace
}  // namespace stripack::io
