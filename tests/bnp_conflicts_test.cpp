// PR 9 conflict-learning lockdown (bnp/conflicts): the nogood store's
// set algebra (dedup, two-way subsumption, deterministic eviction), the
// propagation closure rule by rule, explanation minimality (the Farkas
// projection drops active-but-uninvolved branch rows, so the learned
// conflict is strictly more general than the node path that exposed it),
// and end-to-end exactness: certified optima are bit-equal with the
// subsystem on and off, and disabling it zeroes every diagnostic.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bnp/conflicts/nogood.hpp"
#include "bnp/conflicts/propagate.hpp"
#include "bnp/solver.hpp"
#include "core/validate.hpp"
#include "gen/hard_integral.hpp"
#include "gen/release_gen.hpp"
#include "release/config_lp.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace stripack::bnp::conflicts {
namespace {

using release::BranchPredicate;
using Kind = BranchPredicate::Kind;

BranchLiteral pair_ge(std::size_t a, std::size_t b, double rhs,
                      int phase = -1) {
  BranchPredicate pred;
  pred.kind = Kind::PairTogether;
  pred.phase = phase;
  pred.width_a = a;
  pred.width_b = b;
  return {pred, lp::Sense::GE, rhs};
}

BranchLiteral pair_le(std::size_t a, std::size_t b, double rhs,
                      int phase = -1) {
  BranchLiteral l = pair_ge(a, b, rhs, phase);
  l.sense = lp::Sense::LE;
  return l;
}

BranchLiteral pattern_ge(std::vector<int> counts, double rhs, int phase) {
  BranchPredicate pred;
  pred.kind = Kind::Pattern;
  pred.phase = phase;
  pred.counts = std::move(counts);
  return {pred, lp::Sense::GE, rhs};
}

BranchLiteral phase_le(int phase, double rhs) {
  BranchPredicate pred;
  pred.kind = Kind::PhaseTotal;
  pred.phase = phase;
  return {pred, lp::Sense::LE, rhs};
}

// ------------------------------------------------------- nogood store

TEST(NogoodStore, RejectsEmptyAndDeduplicates) {
  NogoodStore store;
  // An empty conjunction would claim the root infeasible.
  EXPECT_FALSE(store.learn({}));
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.learn({pair_ge(0, 1, 1.0)}));
  // An exact duplicate is subsumed (dominance is reflexive).
  EXPECT_FALSE(store.learn({pair_ge(0, 1, 1.0)}));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.learned(), 1u);
  EXPECT_EQ(store.rejected_subsumed(), 1u);
}

TEST(NogoodStore, CanonicalizeCollapsesRebranchedKeysToTightestRhs) {
  // Re-branching a predicate deeper down activates the same row at a
  // tighter rhs; the literal set must collapse to the child-most value.
  std::vector<BranchLiteral> lits = {pair_le(0, 1, 3.0), pair_ge(2, 3, 1.0),
                                     pair_le(0, 1, 1.0)};
  NogoodStore::canonicalize(lits);
  ASSERT_EQ(lits.size(), 2u);
  for (const BranchLiteral& l : lits) {
    if (l.sense == lp::Sense::LE) {
      EXPECT_EQ(l.rhs, 1.0);  // tightest LE wins
    }
  }
}

TEST(NogoodStore, SubsumptionAbsorbsInBothDirections) {
  {
    // Stored general nogood rejects a more specific newcomer: if
    // {together(0,1)} is infeasible, so is any superset.
    NogoodStore store;
    EXPECT_TRUE(store.learn({pair_ge(0, 1, 1.0)}));
    EXPECT_FALSE(store.learn({pair_ge(0, 1, 1.0), pair_le(2, 3, 0.0)}));
    EXPECT_EQ(store.size(), 1u);
  }
  {
    // A more general newcomer erases the stored specific one.
    NogoodStore store;
    EXPECT_TRUE(store.learn({pair_ge(0, 1, 1.0), pair_le(2, 3, 0.0)}));
    EXPECT_TRUE(store.learn({pair_ge(0, 1, 1.0)}));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.erased_subsumed(), 1u);
    ASSERT_EQ(store.nogoods().front().literals.size(), 1u);
  }
}

TEST(NogoodStore, RhsDominanceOrdersMatches) {
  NogoodStore store;
  // "Total of pair (0,1) >= 2 is infeasible."
  EXPECT_TRUE(store.learn({pair_ge(0, 1, 2.0)}));
  // A node demanding >= 3 is tighter: refuted. >= 1 is looser: not.
  EXPECT_TRUE(store.matches(std::vector<BranchLiteral>{pair_ge(0, 1, 3.0)}));
  EXPECT_FALSE(store.matches(std::vector<BranchLiteral>{pair_ge(0, 1, 1.0)}));
  // The sense matters: an LE literal on the same predicate never
  // dominates a GE explanation.
  EXPECT_FALSE(store.matches(std::vector<BranchLiteral>{pair_le(0, 1, 2.0)}));
}

TEST(NogoodStore, EvictionIsMostLiteralsFirstThenOldest) {
  NogoodStore store(2);
  EXPECT_TRUE(store.learn({pair_ge(0, 1, 1.0), pair_ge(2, 3, 1.0)}));  // id 0
  EXPECT_TRUE(store.learn({pair_ge(4, 5, 1.0)}));                      // id 1
  // Insertion over capacity evicts the most-specific stored nogood (two
  // literals beats one), not the newcomer and not the oldest.
  EXPECT_TRUE(store.learn({pair_ge(6, 7, 1.0)}));  // id 2
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.evicted(), 1u);
  for (const Nogood& n : store.nogoods()) {
    EXPECT_EQ(n.literals.size(), 1u);
  }
  // Equal literal counts: the smallest insertion id goes first.
  EXPECT_TRUE(store.learn({pair_ge(8, 9, 1.0)}));  // evicts id 1
  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.nogoods()[0].id, 2u);
  EXPECT_EQ(store.nogoods()[1].id, 3u);
}

// -------------------------------------------------------- propagation

// Two widths that pair (0.6 + 0.4 <= 1) plus one over-wide partner, two
// release phases of budget 5 each plus unbounded phase R.
release::ConfigLpProblem propagation_problem() {
  release::ConfigLpProblem p;
  p.widths = {0.7, 0.6, 0.4};
  p.releases = {0.0, 5.0, 10.0};
  p.demand = {{4.0, 4.0, 4.0}, {0.0, 2.0, 2.0}, {0.0, 0.0, 1.0}};
  p.strip_width = 1.0;
  return p;
}

TEST(Propagator, IntervalRuleCatchesTogetherApart) {
  const auto p = propagation_problem();
  const Propagator prop(p);
  // together >= 1 and apart (<= 0) on the same predicate.
  std::vector<BranchLiteral> lits = {pair_ge(1, 2, 1.0), pair_le(1, 2, 0.0)};
  NogoodStore::canonicalize(lits);
  const auto verdict = prop.propagate(lits);
  ASSERT_TRUE(verdict.infeasible);
  EXPECT_STREQ(verdict.rule, "interval");
  // A satisfiable interval [1, 2] passes.
  std::vector<BranchLiteral> ok = {pair_ge(1, 2, 1.0), pair_le(1, 2, 2.0)};
  NogoodStore::canonicalize(ok);
  EXPECT_FALSE(prop.propagate(ok).infeasible);
}

TEST(Propagator, PairWidthRuleCatchesOverWideDemand) {
  const auto p = propagation_problem();
  const Propagator prop(p);
  // widths 0.7 + 0.6 = 1.3 > 1: no configuration holds the pair, so a
  // GE demand on it is structurally unsatisfiable.
  std::vector<BranchLiteral> lits = {pair_ge(0, 1, 1.0)};
  const auto verdict = prop.propagate(lits);
  ASSERT_TRUE(verdict.infeasible);
  EXPECT_STREQ(verdict.rule, "pair-width");
  // The same pair *forbidden* is fine (LE 0 on an empty set holds).
  EXPECT_FALSE(prop.propagate(std::vector<BranchLiteral>{pair_le(0, 1, 0.0)})
                   .infeasible);
  // A pair that fits passes.
  EXPECT_FALSE(prop.propagate(std::vector<BranchLiteral>{pair_ge(1, 2, 1.0)})
                   .infeasible);
}

TEST(Propagator, PairPatternRuleForwardsPatternDemand) {
  const auto p = propagation_problem();
  const Propagator prop(p);
  // Pattern {0,1,1} (one 0.6 plus one 0.4) demanded at height 1 in
  // phase 0, while the (0.6, 0.4) pair is capped at 0 everywhere.
  std::vector<BranchLiteral> lits = {pattern_ge({0, 1, 1}, 1.0, 0),
                                     pair_le(1, 2, 0.0)};
  NogoodStore::canonicalize(lits);
  const auto verdict = prop.propagate(lits);
  ASSERT_TRUE(verdict.infeasible);
  EXPECT_STREQ(verdict.rule, "pair-pattern");
  // Phase mismatch on a concrete pair phase: no forwarding.
  std::vector<BranchLiteral> other = {pattern_ge({0, 1, 1}, 1.0, 0),
                                      pair_le(1, 2, 0.0, /*phase=*/1)};
  NogoodStore::canonicalize(other);
  EXPECT_FALSE(prop.propagate(other).infeasible);
}

TEST(Propagator, PhaseCapacityRuleSumsDisjointDemands) {
  const auto p = propagation_problem();
  const Propagator prop(p);
  // Phase 0 holds at most releases[1] - releases[0] = 5 height units.
  // Two distinct exact patterns demand 3 + 3 = 6 there: conflict.
  std::vector<BranchLiteral> lits = {pattern_ge({0, 0, 2}, 3.0, 0),
                                     pattern_ge({0, 1, 1}, 3.0, 0)};
  NogoodStore::canonicalize(lits);
  const auto verdict = prop.propagate(lits);
  ASSERT_TRUE(verdict.infeasible);
  EXPECT_STREQ(verdict.rule, "phase-capacity");
  // 3 + 1 = 4 fits.
  std::vector<BranchLiteral> ok = {pattern_ge({0, 0, 2}, 3.0, 0),
                                   pattern_ge({0, 1, 1}, 1.0, 0)};
  NogoodStore::canonicalize(ok);
  EXPECT_FALSE(prop.propagate(ok).infeasible);
  // A PhaseTotal LE literal tightens the budget: 3 + 1 > 3.5.
  std::vector<BranchLiteral> tight = {pattern_ge({0, 0, 2}, 3.0, 0),
                                      pattern_ge({0, 1, 1}, 1.0, 0),
                                      phase_le(0, 3.5)};
  NogoodStore::canonicalize(tight);
  ASSERT_TRUE(prop.propagate(tight).infeasible);
  // Phase R is unbounded: the same demands in the last phase pass.
  std::vector<BranchLiteral> last = {pattern_ge({0, 0, 2}, 9.0, 2),
                                     pattern_ge({0, 1, 1}, 9.0, 2)};
  NogoodStore::canonicalize(last);
  EXPECT_FALSE(prop.propagate(last).infeasible);
}

// ------------------------------------------- explanation minimality

TEST(ConflictExplanation, ActiveButUninvolvedRowsAreDropped) {
  // The red-test: a node path whose full literal set is NOT the minimal
  // conflict. The infeasibility is driven entirely by the height cap;
  // the active pair branch row is satisfied by the optimal basis with
  // slack, so a minimality-respecting projection must exclude it.
  Rng rng(62);
  gen::ReleaseWorkloadParams params;
  params.n = 30;
  params.K = 3;
  const Instance ins = gen::poisson_release_workload(params, rng);
  const auto problem = release::make_problem(ins);
  ASSERT_GE(problem.num_widths(), 2u);
  for (const bool colgen : {false, true}) {
    release::ConfigLpOptions options;
    options.use_column_generation = colgen;
    release::ConfigLpSolver solver(problem, options);
    const auto base = solver.solve();
    ASSERT_TRUE(base.feasible);
    // An irrelevant-but-active branch row: "pair (0, 1) total >= 0" is
    // satisfied by every solution, so no valid certificate needs it.
    release::BranchPredicate pred;
    pred.kind = Kind::PairTogether;
    pred.width_a = 0;
    pred.width_b = 1;
    const int row = solver.add_branch_row(pred, lp::Sense::GE, 0.0);
    const auto pruned = solver.resolve_with_height_cap(base.objective * 0.5);
    ASSERT_EQ(pruned.status, lp::SolveStatus::Infeasible)
        << "colgen=" << colgen;
    for (const auto& [r, mult] : pruned.farkas_branch_rows) {
      EXPECT_NE(r, row) << "colgen=" << colgen
                        << ": zero-multiplier row in the explanation";
    }
  }
}

// --------------------------------------------------- end-to-end bnp

Instance seeded_instance(std::uint64_t seed, std::size_t n, int w_lo,
                         int w_hi, int h_max, int r_max) {
  Rng rng(seed);
  std::vector<Item> items;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = static_cast<double>(rng.uniform_int(w_lo, w_hi)) / 100.0;
    const double h = static_cast<double>(rng.uniform_int(1, h_max));
    const double r =
        r_max > 0 ? static_cast<double>(rng.uniform_int(0, r_max)) : 0.0;
    items.push_back(Item{Rect{w, h}, r});
  }
  return Instance(std::move(items), 1.0);
}

std::vector<Instance> exactness_sweep() {
  std::vector<Instance> out;
  out.push_back(seeded_instance(3, 20, 27, 39, 1, 0));
  out.push_back(seeded_instance(11, 20, 27, 39, 2, 2));
  out.push_back(seeded_instance(23, 18, 21, 55, 1, 2));
  out.push_back(gen::hard_integral_family(2).instance);
  out.push_back(gen::hard_integral_family(2, 3, 4.0).instance);
  out.push_back(gen::hard_integral_family(3, 2, 4.0).instance);
  return out;
}

TEST(BnpConflicts, CertifiedOptimaAreBitEqualOnAndOff) {
  // Conflict learning may reshape the explored tree (the cutoff cap
  // perturbs degenerate vertex selection even when it never binds), but
  // every certified quantity must be *exactly* preserved.
  for (const bool rounding : {true, false}) {
    std::size_t index = 0;
    for (const Instance& ins : exactness_sweep()) {
      BnpOptions with;
      with.rounding_incumbent = rounding;
      with.use_conflicts = true;
      BnpOptions without = with;
      without.use_conflicts = false;
      const BnpResult a = solve(ins, with);
      const BnpResult b = solve(ins, without);
      const std::string label =
          "instance " + std::to_string(index) + " rounding " +
          std::to_string(rounding);
      ASSERT_EQ(a.status, BnpStatus::Optimal) << label;
      ASSERT_EQ(b.status, BnpStatus::Optimal) << label;
      EXPECT_EQ(a.height, b.height) << label;
      EXPECT_EQ(a.dual_bound, b.dual_bound) << label;
      EXPECT_TRUE(testing::placement_valid(ins, a.packing.placement))
          << label;
      ++index;
    }
  }
}

TEST(BnpConflicts, DisabledMeansEveryDiagnosticIsZero) {
  for (const Instance& ins : exactness_sweep()) {
    BnpOptions options;
    options.use_conflicts = false;
    const BnpResult r = solve(ins, options);
    EXPECT_EQ(r.nogoods_learned, 0u);
    EXPECT_EQ(r.nogood_prunes, 0u);
    EXPECT_EQ(r.propagation_prunes, 0u);
    EXPECT_EQ(r.nogoods_subsumed, 0u);
    EXPECT_EQ(r.nogoods_evicted, 0u);
    EXPECT_EQ(r.nogood_store_size, 0u);
  }
}

TEST(BnpConflicts, CutoffCapLearnsOnGapFamilies) {
  // On a hard_integral release-wave family the root's strong-branching
  // probes run against the rounding incumbent's cap and certify their
  // prunes, so the subsystem demonstrably learns (the store ends
  // non-empty) while the certified optimum matches the certificate.
  const auto fam = gen::hard_integral_family(3, 2, 4.0);
  BnpOptions options;
  const BnpResult r = solve(fam.instance, options);
  ASSERT_EQ(r.status, BnpStatus::Optimal);
  EXPECT_EQ(r.height, fam.certificate.ip_height);
  EXPECT_GE(r.nogoods_learned, 1u);
  EXPECT_EQ(r.nogood_store_size, r.nogoods_learned);
  // The uncapped variant must stay exact too.
  BnpOptions uncapped;
  uncapped.conflict_cutoff_cap = false;
  const BnpResult u = solve(fam.instance, uncapped);
  ASSERT_EQ(u.status, BnpStatus::Optimal);
  EXPECT_EQ(u.height, fam.certificate.ip_height);
}

TEST(BnpConflicts, JitteredFamilyKeepsTheCertificate) {
  // The jittered generator draws per-item widths from (1/3, 1/2] but the
  // certificate is the uniform family's: any two items pair, three never
  // fit, so lp = rho_R + (2k+1)/2 and ip = rho_R + k + 1 regardless of
  // the draws. Both conflict arms must certify exactly that optimum.
  for (const std::uint64_t seed : {1, 2, 3}) {
    const auto fam = gen::hard_integral_jittered(2, 2, 3.0, seed);
    EXPECT_DOUBLE_EQ(fam.certificate.lp_height, 3.0 + 2.5);
    EXPECT_DOUBLE_EQ(fam.certificate.ip_height, 3.0 + 3.0);
    for (const bool conflicts : {true, false}) {
      BnpOptions options;
      options.use_conflicts = conflicts;
      const BnpResult r = solve(fam.instance, options);
      ASSERT_EQ(r.status, BnpStatus::Optimal)
          << "seed=" << seed << " conflicts=" << conflicts;
      EXPECT_EQ(r.height, fam.certificate.ip_height) << "seed=" << seed;
      EXPECT_EQ(r.dual_bound, fam.certificate.ip_height) << "seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace stripack::bnp::conflicts
