#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "gen/release_gen.hpp"
#include "io/instance_io.hpp"
#include "io/svg.hpp"
#include "precedence/dc.hpp"
#include "test_support.hpp"
#include "util/assert.hpp"

namespace stripack::io {
namespace {

// Precedence + release times together: fine for serialization (the format
// stores both), though no single algorithm consumes both at once.
Instance sample_instance() {
  Instance ins;
  const VertexId a = ins.add_item(0.5, 1.0, 0.0);
  const VertexId b = ins.add_item(0.25, 0.75, 1.5);
  const VertexId c = ins.add_item(0.125, 0.125, 0.0);
  ins.add_precedence(a, b);
  ins.add_precedence(a, c);
  return ins;
}

// Precedence-only variant for algorithm-driven tests (SVG rendering).
Instance precedence_instance() {
  Instance ins;
  const VertexId a = ins.add_item(0.5, 1.0);
  const VertexId b = ins.add_item(0.25, 0.75);
  const VertexId c = ins.add_item(0.125, 0.125);
  ins.add_precedence(a, b);
  ins.add_precedence(a, c);
  return ins;
}

TEST(InstanceIo, RoundTripPreservesEverything) {
  const Instance original = sample_instance();
  std::stringstream buffer;
  write_instance(buffer, original);
  const Instance loaded = read_instance(buffer);

  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_DOUBLE_EQ(loaded.strip_width(), original.strip_width());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.item(i), original.item(i)) << "item " << i;
  }
  EXPECT_EQ(loaded.dag().edges(), original.dag().edges());
}

TEST(InstanceIo, RoundTripExactDoubles) {
  // 17 significant digits survive the text format.
  Instance ins;
  ins.add_item(1.0 / 3.0, 2.0 / 7.0, 1.0 / 9.0);
  std::stringstream buffer;
  write_instance(buffer, ins);
  const Instance loaded = read_instance(buffer);
  EXPECT_EQ(loaded.item(0), ins.item(0));
}

TEST(InstanceIo, CommentsAndBlankLinesIgnored) {
  std::stringstream buffer;
  buffer << "# a comment\n\nstripack-instance v1\n"
         << "strip_width 1\n# another\nitems 1\n0.5 0.5 0\nedges 0\n";
  const Instance loaded = read_instance(buffer);
  EXPECT_EQ(loaded.size(), 1u);
}

TEST(InstanceIo, RejectsBadHeader) {
  std::stringstream buffer;
  buffer << "not-an-instance v1\n";
  EXPECT_THROW(read_instance(buffer), ContractViolation);
}

TEST(InstanceIo, RejectsTruncatedFile) {
  std::stringstream buffer;
  buffer << "stripack-instance v1\nstrip_width 1\nitems 2\n0.5 0.5 0\n";
  EXPECT_THROW(read_instance(buffer), ContractViolation);
}

TEST(InstanceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/stripack_io_test.txt";
  const Instance original = sample_instance();
  save_instance(path, original);
  const Instance loaded = load_instance(path);
  EXPECT_EQ(loaded.size(), original.size());
}

TEST(PlacementIo, RoundTrip) {
  const Placement p{{0.0, 0.5}, {0.25, 1.75}};
  std::stringstream buffer;
  write_placement(buffer, p);
  EXPECT_EQ(read_placement(buffer), p);
}

TEST(Svg, ContainsOneRectPerItemPlusFrame) {
  const Instance ins = precedence_instance();
  const DcResult result = dc_pack(ins);
  const std::string svg = to_svg(ins, result.packing.placement);
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_EQ(rects, ins.size() + 1);  // + background frame
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, SavesToFile) {
  const Instance ins = precedence_instance();
  const DcResult result = dc_pack(ins);
  const std::string path = ::testing::TempDir() + "/stripack_test.svg";
  save_svg(path, ins, result.packing.placement);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("<svg"), std::string::npos);
}

}  // namespace
}  // namespace stripack::io
