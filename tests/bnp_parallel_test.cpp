// PR 5 scaling machinery lockdown: batch-synchronous parallel node
// evaluation must be bit-identical across thread counts at a fixed batch
// size, batch mode must certify the same optima as the classic serial
// path, the pricing cache must not change certified quantities while
// cutting DFS expansions, and Lagrangian cutoff pruning must preserve
// exactness.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "bnp/solver.hpp"
#include "core/validate.hpp"
#include "gen/hard_integral.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace stripack::bnp {
namespace {

constexpr double kTol = 1e-6;

// Integer-height, integer-release workloads whose widths sit in the
// two-to-three-per-column regime — persistent fractionality, so the
// searches genuinely branch (trees of a few dozen nodes each; probed).
Instance seeded_instance(std::uint64_t seed, std::size_t n, int w_lo,
                         int w_hi, int h_max, int r_max) {
  Rng rng(seed);
  std::vector<Item> items;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = static_cast<double>(rng.uniform_int(w_lo, w_hi)) / 100.0;
    const double h = static_cast<double>(rng.uniform_int(1, h_max));
    const double r =
        r_max > 0 ? static_cast<double>(rng.uniform_int(0, r_max)) : 0.0;
    items.push_back(Item{Rect{w, h}, r});
  }
  return Instance(std::move(items), 1.0);
}

// The sweep: triple-regime and mixed-width workloads plus hard_integral
// gap families, including the release-wave variants (bursts > 1) whose
// gap survives phasing.
std::vector<Instance> sweep_instances() {
  std::vector<Instance> out;
  out.push_back(seeded_instance(3, 20, 27, 39, 1, 0));
  out.push_back(seeded_instance(7, 20, 27, 39, 1, 0));
  out.push_back(seeded_instance(11, 20, 27, 39, 2, 2));
  out.push_back(seeded_instance(23, 20, 27, 39, 2, 2));
  out.push_back(seeded_instance(23, 18, 21, 55, 1, 2));
  out.push_back(gen::hard_integral_family(2).instance);
  out.push_back(gen::hard_integral_family(2, 3, 4.0).instance);
  return out;
}

void expect_bit_identical(const BnpResult& a, const BnpResult& b,
                          const std::string& label) {
  EXPECT_EQ(a.status, b.status) << label;
  // Bit-identical, not merely near: the parallel merge replays the
  // serial arithmetic in the same order.
  EXPECT_EQ(a.height, b.height) << label;
  EXPECT_EQ(a.dual_bound, b.dual_bound) << label;
  EXPECT_EQ(a.nodes, b.nodes) << label;
  EXPECT_EQ(a.nodes_created, b.nodes_created) << label;
  EXPECT_EQ(a.batches, b.batches) << label;
  EXPECT_EQ(a.branch_rows, b.branch_rows) << label;
  EXPECT_EQ(a.cutoff_pruned_nodes, b.cutoff_pruned_nodes) << label;
  // Conflict-learning state is part of the determinism contract: the
  // store is only touched in the serial merge order, so learned nogoods
  // and both prune kinds must replay exactly across thread counts.
  EXPECT_EQ(a.nogoods_learned, b.nogoods_learned) << label;
  EXPECT_EQ(a.nogood_prunes, b.nogood_prunes) << label;
  EXPECT_EQ(a.propagation_prunes, b.propagation_prunes) << label;
  EXPECT_EQ(a.nogood_store_size, b.nogood_store_size) << label;
  ASSERT_EQ(a.slices.size(), b.slices.size()) << label;
  for (std::size_t i = 0; i < a.slices.size(); ++i) {
    EXPECT_EQ(a.slices[i].phase, b.slices[i].phase) << label;
    EXPECT_EQ(a.slices[i].height, b.slices[i].height) << label;
    EXPECT_EQ(a.slices[i].config.counts, b.slices[i].config.counts) << label;
  }
  ASSERT_EQ(a.packing.placement.size(), b.packing.placement.size()) << label;
  for (std::size_t i = 0; i < a.packing.placement.size(); ++i) {
    EXPECT_EQ(a.packing.placement[i].x, b.packing.placement[i].x) << label;
    EXPECT_EQ(a.packing.placement[i].y, b.packing.placement[i].y) << label;
  }
}

TEST(BnpParallel, ThreadCountsAreBitIdenticalAtFixedBatch) {
  // The tentpole determinism claim: for a fixed node batch, the explored
  // tree, bounds, slices and final packing do not depend on the thread
  // count — 2- and 4-thread runs replay the 1-thread run exactly.
  std::size_t total_nodes = 0;
  for (const bool rounding : {true, false}) {
    std::size_t index = 0;
    for (const Instance& ins : sweep_instances()) {
      BnpOptions serial;
      serial.rounding_incumbent = rounding;
      serial.threads = 1;
      serial.node_batch = 8;
      // Explicitly pin conflict learning ON (the default): the sweep
      // must prove the nogood store + cutoff-cap path is bit-identical
      // across thread counts, not just the plain search.
      serial.use_conflicts = true;
      const BnpResult base = solve(ins, serial);
      total_nodes += base.nodes;
      for (const int threads : {2, 4}) {
        BnpOptions parallel = serial;
        parallel.threads = threads;
        const BnpResult other = solve(ins, parallel);
        expect_bit_identical(base, other,
                             "instance " + std::to_string(index) +
                                 " threads " + std::to_string(threads) +
                                 " rounding " + std::to_string(rounding));
      }
      ++index;
    }
  }
  // The sweep must actually exercise multi-node batched searches.
  EXPECT_GT(total_nodes, 40u);
}

TEST(BnpParallel, BatchModeCertifiesTheSerialOptima) {
  // Batch-synchronous search may explore a different tree than the
  // classic serial path (nodes in one batch do not see each other's
  // columns or incumbents), but every certified quantity must agree.
  for (const Instance& ins : sweep_instances()) {
    BnpOptions serial;
    serial.rounding_incumbent = false;
    const BnpResult a = solve(ins, serial);
    BnpOptions batched = serial;
    batched.threads = 2;
    batched.node_batch = 4;
    const BnpResult b = solve(ins, batched);
    ASSERT_EQ(a.status, BnpStatus::Optimal);
    ASSERT_EQ(b.status, BnpStatus::Optimal);
    EXPECT_NEAR(a.height, b.height, kTol);
    EXPECT_NEAR(a.dual_bound, b.dual_bound, kTol);
    EXPECT_GT(b.batches, 0u);
    EXPECT_TRUE(testing::placement_valid(ins, b.packing.placement));
  }
}

TEST(BnpParallel, PricingCacheKeepsCertifiedQuantities) {
  // Memoized pricing only seeds the exact DFS; status, height and dual
  // bound must match the uncached run on the whole sweep, while the DFS
  // expansion count drops.
  std::int64_t cached_expansions = 0;
  std::int64_t uncached_expansions = 0;
  for (const Instance& ins : sweep_instances()) {
    BnpOptions with_cache;
    with_cache.rounding_incumbent = false;
    BnpOptions without_cache = with_cache;
    without_cache.pricing_cache = false;
    const BnpResult a = solve(ins, with_cache);
    const BnpResult b = solve(ins, without_cache);
    EXPECT_EQ(a.status, b.status);
    EXPECT_NEAR(a.height, b.height, kTol);
    EXPECT_NEAR(a.dual_bound, b.dual_bound, kTol);
    cached_expansions += a.pricing_dfs_expansions;
    uncached_expansions += b.pricing_dfs_expansions;
    EXPECT_GT(a.pricing_cache_probes, 0) << "cache never probed";
  }
  EXPECT_GT(uncached_expansions, 0);
  // The committed target: >= 30% fewer serial DFS expansions with
  // memoized pricing on (the bench records the exact ratio per size).
  EXPECT_LT(static_cast<double>(cached_expansions),
            0.7 * static_cast<double>(uncached_expansions));
}

TEST(BnpParallel, LagrangianCutoffPreservesExactness) {
  for (const Instance& ins : sweep_instances()) {
    BnpOptions with_cutoff;
    with_cutoff.rounding_incumbent = false;
    BnpOptions without_cutoff = with_cutoff;
    without_cutoff.lagrangian_pruning = false;
    const BnpResult a = solve(ins, with_cutoff);
    const BnpResult b = solve(ins, without_cutoff);
    ASSERT_EQ(a.status, BnpStatus::Optimal);
    ASSERT_EQ(b.status, BnpStatus::Optimal);
    EXPECT_NEAR(a.height, b.height, kTol);
    EXPECT_NEAR(a.dual_bound, b.dual_bound, kTol);
  }
}

TEST(BnpParallel, PseudoCostBranchingStaysExactOnGapFamilies) {
  // The gap families need genuine branching to close their LP/IP gap; the
  // pseudo-cost selector (strong-branching seeded) must still certify.
  for (std::size_t k = 1; k <= 4; ++k) {
    const auto family = gen::hard_integral_family(k);
    for (const bool pseudo : {true, false}) {
      BnpOptions options;
      options.rounding_incumbent = false;
      options.pseudo_cost_branching = pseudo;
      const BnpResult result = solve(family.instance, options);
      EXPECT_EQ(result.status, BnpStatus::Optimal) << "k=" << k;
      EXPECT_NEAR(result.height, family.certificate.ip_height, kTol)
          << "k=" << k << " pseudo=" << pseudo;
      EXPECT_NEAR(result.dual_bound, result.height, kTol);
    }
  }
}

TEST(BnpParallel, BudgetedBatchRunsKeepValidBrackets) {
  // A node budget smaller than the tree must yield NodeLimit with a
  // bracket that still sandwiches the true optimum — including when the
  // budget bites mid-batch (budget 10, batches of 4).
  const Instance ins = seeded_instance(3, 20, 27, 39, 1, 0);
  BnpOptions exact;
  exact.rounding_incumbent = false;
  const BnpResult truth = solve(ins, exact);
  ASSERT_EQ(truth.status, BnpStatus::Optimal);
  ASSERT_GT(truth.nodes, 12u);  // the budget below must genuinely bite
  BnpOptions options = exact;
  options.threads = 2;
  options.node_batch = 4;
  options.budget.max_nodes = 10;
  const BnpResult result = solve(ins, options);
  EXPECT_EQ(result.status, BnpStatus::NodeLimit);
  EXPECT_LE(result.dual_bound, result.height + kTol);
  EXPECT_GE(result.height, truth.height - kTol);
  EXPECT_LE(result.dual_bound, truth.height + kTol);
  EXPECT_TRUE(testing::placement_valid(ins, result.packing.placement));
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  std::vector<std::atomic<int>> hits(257);
  pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Reuse across calls (the point of pooling) and the serial small-n path.
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run(17, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50 * 17);
}

TEST(ThreadPoolTest, RethrowsTheLowestChunkError) {
  ThreadPool pool(4);
  try {
    pool.run(
        100,
        [&](std::size_t i) {
          if (i % 25 == 3) throw std::runtime_error("i=" + std::to_string(i));
        },
        25);  // chunks of 4: throws at i = 3, 28, 53, 78
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "i=3");
  }
}

}  // namespace
}  // namespace stripack::bnp
