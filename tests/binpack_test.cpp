#include "binpack/binpack.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace stripack::binpack {
namespace {

TEST(BinPack, EmptyInput) {
  EXPECT_EQ(pack({}, 1.0, Fit::NextFit).num_bins(), 0u);
  EXPECT_EQ(lb_size({}, 1.0), 0u);
  EXPECT_EQ(exact_min_bins({}, 1.0), 0u);
}

TEST(BinPack, SingleItem) {
  const std::vector<double> sizes{0.7};
  for (Fit fit : {Fit::NextFit, Fit::FirstFit, Fit::BestFit}) {
    const auto a = pack(sizes, 1.0, fit);
    EXPECT_EQ(a.num_bins(), 1u);
    EXPECT_TRUE(is_valid(a, sizes, 1.0));
  }
}

TEST(BinPack, NextFitNeverLooksBack) {
  // 0.6, 0.5, 0.3: NF opens bin2 for 0.5, then 0.3 joins bin2 even though
  // bin1 has room only for 0.3 (0.4 free).
  const std::vector<double> sizes{0.6, 0.5, 0.3};
  const auto nf = pack(sizes, 1.0, Fit::NextFit);
  EXPECT_EQ(nf.num_bins(), 2u);
  const auto owner = nf.item_to_bin(3);
  EXPECT_EQ(owner[1], owner[2]);
}

TEST(BinPack, FirstFitReusesEarlierBins) {
  const std::vector<double> sizes{0.6, 0.5, 0.3};
  const auto ff = pack(sizes, 1.0, Fit::FirstFit);
  EXPECT_EQ(ff.num_bins(), 2u);
  const auto owner = ff.item_to_bin(3);
  EXPECT_EQ(owner[0], owner[2]);  // 0.3 joins the 0.6 bin
}

TEST(BinPack, BestFitPicksTightest) {
  // Bins with loads 0.7 and 0.5; a 0.3 fits both; best fit -> 0.7 bin.
  const std::vector<double> sizes{0.7, 0.5, 0.3};
  const auto bf = pack(sizes, 1.0, Fit::BestFit);
  const auto owner = bf.item_to_bin(3);
  EXPECT_EQ(owner[0], owner[2]);
}

TEST(BinPack, DecreasingVariantsSortFirst) {
  // Sorted desc: 0.9 | 0.8 | 0.3 fits neither, opens bin 3 | 0.2 joins 0.8.
  const std::vector<double> sizes{0.2, 0.9, 0.3, 0.8};
  const auto ffd = pack_decreasing(sizes, 1.0, Fit::FirstFit);
  EXPECT_TRUE(is_valid(ffd, sizes, 1.0));
  EXPECT_EQ(ffd.num_bins(), 3u);
  const auto owner = ffd.item_to_bin(4);
  EXPECT_EQ(owner[0], owner[3]);  // 0.2 shares a bin with 0.8
}

TEST(BinPack, FfdMatchesExactOnKnownInstance) {
  // {0.9}, {0.8, 0.2}, {0.3}: both FFD and the optimum need 3 bins
  // (0.9 and 0.8 exclude everything except the 0.2 next to 0.8).
  const std::vector<double> sizes{0.9, 0.8, 0.3, 0.2};
  const auto ffd = pack_decreasing(sizes, 1.0, Fit::FirstFit);
  EXPECT_EQ(ffd.num_bins(), 3u);
  EXPECT_EQ(exact_min_bins(sizes, 1.0), 3u);
}

TEST(BinPack, RejectsOversizeItem) {
  const std::vector<double> sizes{1.5};
  EXPECT_THROW(pack(sizes, 1.0, Fit::FirstFit), ContractViolation);
}

TEST(BinPack, LbSizeCeils) {
  const std::vector<double> sizes{0.5, 0.5, 0.5};
  EXPECT_EQ(lb_size(sizes, 1.0), 2u);
}

TEST(BinPack, MartelloTothBeatsSizeOnHalves) {
  // Five items of 0.6: L1 = ceil(3.0) = 3, L2 = 5 (no two fit together).
  const std::vector<double> sizes(5, 0.6);
  EXPECT_EQ(lb_size(sizes, 1.0), 3u);
  EXPECT_EQ(lb_martello_toth(sizes, 1.0), 5u);
  EXPECT_EQ(exact_min_bins(sizes, 1.0), 5u);
}

TEST(BinPack, ExactMatchesKnownOptimum) {
  // 0.5,0.5,0.4,0.4,0.2 -> pairs (0.5,0.5), (0.4,0.4,0.2): 2 bins.
  const std::vector<double> sizes{0.5, 0.5, 0.4, 0.4, 0.2};
  EXPECT_EQ(exact_min_bins(sizes, 1.0), 2u);
}

TEST(BinPack, IsValidCatchesOverflowAndDuplicates) {
  const std::vector<double> sizes{0.7, 0.6};
  BinAssignment overfull;
  overfull.bins = {{0, 1}};
  EXPECT_FALSE(is_valid(overfull, sizes, 1.0));
  BinAssignment duplicated;
  duplicated.bins = {{0}, {0, 1}};
  EXPECT_FALSE(is_valid(duplicated, sizes, 1.0));
  BinAssignment missing;
  missing.bins = {{0}};
  EXPECT_FALSE(is_valid(missing, sizes, 1.0));
  BinAssignment good;
  good.bins = {{0}, {1}};
  EXPECT_TRUE(is_valid(good, sizes, 1.0));
}

// Heuristics vs exact optimum and lower bounds on random sweeps.
class BinPackSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BinPackSweep, HeuristicsValidAndBounded) {
  Rng rng(GetParam());
  std::vector<double> sizes;
  for (int i = 0; i < 14; ++i) sizes.push_back(rng.uniform(0.05, 0.95));

  const std::size_t opt = exact_min_bins(sizes, 1.0);
  const std::size_t lb = lb_martello_toth(sizes, 1.0);
  EXPECT_LE(lb, opt);

  for (Fit fit : {Fit::NextFit, Fit::FirstFit, Fit::BestFit}) {
    const auto online = pack(sizes, 1.0, fit);
    EXPECT_TRUE(is_valid(online, sizes, 1.0));
    EXPECT_GE(online.num_bins(), opt);
    const auto offline = pack_decreasing(sizes, 1.0, fit);
    EXPECT_TRUE(is_valid(offline, sizes, 1.0));
    EXPECT_GE(offline.num_bins(), opt);
    // FFD is within 11/9 OPT + 1 (we only assert the weaker 2x here).
    if (fit != Fit::NextFit) {
      EXPECT_LE(offline.num_bins(), 2 * opt + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinPackSweep,
                         ::testing::Values(3u, 5u, 8u, 13u, 21u, 34u, 55u));

}  // namespace
}  // namespace stripack::binpack
