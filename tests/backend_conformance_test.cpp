// Backend-conformance kit: the executable statement of the `lp::LpBackend`
// contract (lp/backend.hpp). Every test is parameterized over the backend
// registry, so any registered backend — today the eta-file engine and the
// dense reference simplex, tomorrow whatever gets plugged in — must pass
// the same suite: cold certified optimality, warm re-solves with
// `phase1_iterations == 0` (rows, rhs-only, columns, basis handoff), valid
// Farkas certificates on infeasibility, and the `objective_cutoff`
// early-exit of `solve_dual`.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "lp/backend.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "lp_test_support.hpp"
#include "util/rng.hpp"

namespace stripack::lp {
namespace {

class BackendConformance : public ::testing::TestWithParam<std::string> {
 protected:
  [[nodiscard]] std::unique_ptr<LpBackend> make(
      const Model& model, const SimplexOptions& options = {}) const {
    return make_lp_backend(GetParam(), model, options);
  }
};

// A Farkas certificate must prove infeasibility of the *current* model:
// y'a_c <= tol for every column, the sign matching each row's sense, and
// y'b strictly positive.
void expect_valid_farkas(const Model& model, const Solution& solution,
                         double tol = 1e-6) {
  ASSERT_EQ(solution.status, SolveStatus::Infeasible);
  ASSERT_EQ(static_cast<int>(solution.farkas.size()), model.num_rows());
  double yb = 0.0;
  for (int r = 0; r < model.num_rows(); ++r) {
    const double y = solution.farkas[r];
    switch (model.row_sense(r)) {
      case Sense::LE:
        EXPECT_LE(y, tol) << "row " << r << " sign";
        break;
      case Sense::GE:
        EXPECT_GE(y, -tol) << "row " << r << " sign";
        break;
      case Sense::EQ:
        break;  // free multiplier
    }
    yb += y * model.row_rhs(r);
  }
  EXPECT_GT(yb, 1e-9) << "certificate must separate b";
  for (int c = 0; c < model.num_cols(); ++c) {
    double ya = 0.0;
    for (const RowEntry& e : model.column_entries(c)) {
      ya += solution.farkas[e.row] * e.coef;
    }
    EXPECT_LE(ya, tol) << "column " << c << " must price nonpositive";
  }
}

// Independent ground truth for status/objective: the free-function solve
// (cold eta-file engine) — itself locked down by the differential suite.
Solution reference(const Model& model) { return solve(model); }

TEST_P(BackendConformance, ColdSolveCertifiedAgainstReference) {
  int optimal = 0, infeasible = 0;
  for (int seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    const Model model = random_covering_model(rng, 4, 10);
    const Solution expected = reference(model);
    const Solution got = make(model)->solve();
    ASSERT_EQ(got.status, expected.status) << "seed " << seed;
    if (got.status == SolveStatus::Optimal) {
      ++optimal;
      certify_optimal_solution(model, got);
      EXPECT_NEAR(got.objective, expected.objective,
                  1e-6 * (1.0 + std::fabs(expected.objective)))
          << "seed " << seed;
    } else if (got.status == SolveStatus::Infeasible) {
      ++infeasible;
      expect_valid_farkas(model, got);
    }
  }
  // The generator must exercise both verdicts for this sweep to mean much.
  EXPECT_GT(optimal, 0);
  EXPECT_GT(infeasible, 0);
}

TEST_P(BackendConformance, WarmRowResolveSkipsPhase1) {
  int resolved = 0;
  for (int seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    Model model = random_covering_model(rng, 4, 10);
    if (!reference(model).optimal()) continue;
    const auto backend = make(model);
    const Solution first = backend->solve();
    ASSERT_EQ(first.status, SolveStatus::Optimal) << "seed " << seed;
    // Append a cut violated by the current optimum: sum of all variables
    // at most half its current value.
    double total = 0.0;
    for (const double v : first.x) total += v;
    if (total < 1e-6) continue;
    std::vector<ColumnEntry> entries;
    for (int c = 0; c < model.num_cols(); ++c) entries.push_back({c, 1.0});
    model.add_row_with_entries(Sense::LE, 0.5 * total, entries);
    backend->sync_rows();
    const Solution warm = backend->solve_dual();
    EXPECT_EQ(warm.phase1_iterations, 0) << "seed " << seed;
    const Solution cold = reference(model);
    ASSERT_EQ(warm.status, cold.status) << "seed " << seed;
    if (warm.status == SolveStatus::Optimal) {
      ++resolved;
      EXPECT_GE(warm.dual_iterations, 1) << "seed " << seed;
      certify_optimal_solution(model, warm);
      EXPECT_NEAR(warm.objective, cold.objective,
                  1e-6 * (1.0 + std::fabs(cold.objective)));
    } else {
      expect_valid_farkas(model, warm);
    }
  }
  EXPECT_GT(resolved, 0);
}

TEST_P(BackendConformance, RhsOnlyResolveIsPhase1Free) {
  int tightened = 0;
  for (int seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    Model model = random_covering_model(rng, 5, 12);
    if (!reference(model).optimal()) continue;
    const auto backend = make(model);
    ASSERT_EQ(backend->solve().status, SolveStatus::Optimal);
    // Tighten every covering row's demand in place — no new rows, so this
    // must ride the rhs-only fast path of sync_rows.
    bool changed = false;
    for (int r = 0; r < model.num_rows(); ++r) {
      if (model.row_sense(r) == Sense::GE && model.row_rhs(r) > 0.0) {
        model.set_row_rhs(r, 1.5 * model.row_rhs(r) + 0.25);
        changed = true;
      }
    }
    if (!changed) continue;
    ++tightened;
    backend->sync_rows();
    const Solution warm = backend->solve_dual();
    EXPECT_EQ(warm.phase1_iterations, 0) << "seed " << seed;
    const Solution cold = reference(model);
    ASSERT_EQ(warm.status, cold.status) << "seed " << seed;
    if (warm.status == SolveStatus::Optimal) {
      certify_optimal_solution(model, warm);
      EXPECT_NEAR(warm.objective, cold.objective,
                  1e-6 * (1.0 + std::fabs(cold.objective)));
    } else {
      expect_valid_farkas(model, warm);
    }
  }
  EXPECT_GT(tightened, 0);
}

TEST_P(BackendConformance, ColumnSyncKeepsWarmStartsPhase1Free) {
  for (int seed = 1; seed <= 15; ++seed) {
    Rng rng(1000 + seed);
    Model model = random_covering_model(rng, 4, 6);
    if (!reference(model).optimal()) continue;
    const auto backend = make(model);
    ASSERT_EQ(backend->solve().status, SolveStatus::Optimal);
    // Grow the master by a few cheap columns, colgen-style.
    for (int extra = 0; extra < 3; ++extra) {
      std::vector<RowEntry> entries;
      for (int r = 0; r < model.num_rows(); ++r) {
        if (rng.bernoulli(0.5)) entries.push_back({r, rng.uniform(0.2, 1.5)});
      }
      model.add_column(rng.uniform(0.2, 1.0), entries);
    }
    backend->sync_columns();
    const Solution warm = backend->solve();
    ASSERT_EQ(warm.status, SolveStatus::Optimal) << "seed " << seed;
    EXPECT_EQ(warm.phase1_iterations, 0) << "seed " << seed;
    certify_optimal_solution(model, warm);
    const Solution cold = reference(model);
    EXPECT_NEAR(warm.objective, cold.objective,
                1e-6 * (1.0 + std::fabs(cold.objective)));
  }
}

TEST_P(BackendConformance, BasisHandoffRestartsWithoutPhase1) {
  for (int seed = 1; seed <= 15; ++seed) {
    Rng rng(2000 + seed);
    const Model model = random_covering_model(rng, 5, 12);
    if (!reference(model).optimal()) continue;
    const Solution first = make(model)->solve();
    ASSERT_EQ(first.status, SolveStatus::Optimal);
    ASSERT_EQ(static_cast<int>(first.basis.size()), model.num_rows());
    SimplexOptions options;
    options.initial_basis = first.basis;
    const Solution warm = make(model, options)->solve();
    ASSERT_EQ(warm.status, SolveStatus::Optimal) << "seed " << seed;
    EXPECT_EQ(warm.phase1_iterations, 0) << "seed " << seed;
    certify_optimal_solution(model, warm);
    EXPECT_NEAR(warm.objective, first.objective,
                1e-6 * (1.0 + std::fabs(first.objective)));
  }
}

TEST_P(BackendConformance, ColdInfeasibleExportsFarkas) {
  // x <= 1 conflicting with x + y >= 3, y absent elsewhere and capped out.
  Model model;
  const int le = model.add_row(Sense::LE, 1.0);
  const int ge = model.add_row(Sense::GE, 3.0);
  const int cap = model.add_row(Sense::LE, 0.5);
  model.add_column(1.0, std::vector<RowEntry>{{le, 1.0}, {ge, 1.0}});
  model.add_column(1.0, std::vector<RowEntry>{{ge, 1.0}, {cap, 1.0}});
  const Solution got = make(model)->solve();
  expect_valid_farkas(model, got);
}

TEST_P(BackendConformance, EqualityRowsSolveAndCertify) {
  Model model;
  const int eq = model.add_row(Sense::EQ, 2.0);
  const int le = model.add_row(Sense::LE, 3.0);
  model.add_column(1.0, std::vector<RowEntry>{{eq, 1.0}, {le, 1.0}});
  model.add_column(3.0, std::vector<RowEntry>{{eq, 1.0}});
  const Solution got = make(model)->solve();
  ASSERT_EQ(got.status, SolveStatus::Optimal);
  certify_optimal_solution(model, got);
  EXPECT_NEAR(got.objective, 2.0, 1e-7);  // cheap column covers the equality
}

TEST_P(BackendConformance, UnboundedDetected) {
  Model model;
  const int r = model.add_row(Sense::GE, 1.0);
  model.add_column(-1.0, std::vector<RowEntry>{{r, 1.0}});
  const Solution got = make(model)->solve();
  EXPECT_EQ(got.status, SolveStatus::Unbounded);
}

TEST_P(BackendConformance, ObjectiveCutoffStopsDualResolveEarly) {
  int exercised = 0;
  for (int seed = 1; seed <= 25; ++seed) {
    Rng rng(3000 + seed);
    Model model = random_covering_model(rng, 5, 12);
    const Solution base = reference(model);
    if (!base.optimal()) continue;
    const auto backend = make(model);
    ASSERT_EQ(backend->solve().status, SolveStatus::Optimal);
    for (int r = 0; r < model.num_rows(); ++r) {
      if (model.row_sense(r) == Sense::GE) {
        model.set_row_rhs(r, 2.0 * model.row_rhs(r) + 0.5);
      }
    }
    const Solution after = reference(model);
    if (!after.optimal() || after.objective < base.objective + 1e-3) continue;
    const double cutoff = 0.5 * (base.objective + after.objective);
    backend->sync_rows();
    const Solution pruned = backend->solve_dual(false, cutoff);
    if (pruned.status == SolveStatus::Optimal) {
      // Documented escape hatch: an rhs change can push the retained basis
      // outside dual reach, and the primal fallback ignores the cutoff.
      // The answer must then be the full optimum.
      EXPECT_NEAR(pruned.objective, after.objective,
                  1e-6 * (1.0 + std::fabs(after.objective)))
          << "seed " << seed;
      continue;
    }
    ++exercised;
    ASSERT_EQ(pruned.status, SolveStatus::ObjectiveCutoff) << "seed " << seed;
    // The reported bound is certified: at or past the cutoff, never past
    // the true optimum.
    EXPECT_GE(pruned.objective, cutoff - 1e-7) << "seed " << seed;
    EXPECT_LE(pruned.objective,
              after.objective + 1e-6 * (1.0 + std::fabs(after.objective)))
        << "seed " << seed;
    EXPECT_EQ(pruned.phase1_iterations, 0);
  }
  // The early exit itself must fire for the sweep to mean anything.
  EXPECT_GT(exercised, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, BackendConformance,
    ::testing::ValuesIn(lp_backend_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace stripack::lp
