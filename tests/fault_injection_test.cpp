// Fault-injection sweeps (util/fault_injection.hpp): seeded FaultPlans
// drive every injected failure class — eta corruption, near-singular
// pivots, thrown exceptions, tripped stop tokens — through the raw LP
// backends, the configuration-LP solver (enumeration and column
// generation) and full branch and price, asserting that each run ends in
// a *documented* status with a valid bound bracket, that recovered runs
// reproduce the fault-free optimum, and that the whole pipeline is
// deterministic for a fixed plan. Plus direct unit tests of the injector
// (exactly-once claims, plan determinism).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "bnp/solver.hpp"
#include "core/validate.hpp"
#include "gen/hard_integral.hpp"
#include "lp/backend.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "lp_test_support.hpp"
#include "release/config_lp.hpp"
#include "test_support.hpp"
#include "util/fault_injection.hpp"

namespace stripack {
namespace {

constexpr double kTol = 1e-6;

TEST(FaultPlan, RandomIsDeterministicInTheSeed) {
  const FaultPlan a = FaultPlan::random(42, 6, 100);
  const FaultPlan b = FaultPlan::random(42, 6, 100);
  ASSERT_EQ(a.events.size(), 6u);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].site, b.events[i].site) << i;
    EXPECT_EQ(a.events[i].at, b.events[i].at) << i;
    EXPECT_EQ(a.events[i].action, b.events[i].action) << i;
    EXPECT_EQ(a.events[i].magnitude, b.events[i].magnitude) << i;
    EXPECT_GE(a.events[i].at, 1u);
    EXPECT_LE(a.events[i].at, 100u);
    EXPECT_NE(a.events[i].action, FaultAction::None);
  }
  // A different seed draws a different schedule (with overwhelming
  // probability; this particular pair is fixed, so the check is exact).
  const FaultPlan c = FaultPlan::random(43, 6, 100);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    any_diff = any_diff || a.events[i].site != c.events[i].site ||
               a.events[i].at != c.events[i].at ||
               a.events[i].action != c.events[i].action;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultInjector, FiresEachEventExactlyOnce) {
  FaultPlan plan;
  plan.events.push_back(
      {FaultSite::Pivot, 3, FaultAction::NearSingularPivot, 0.0});
  plan.events.push_back({FaultSite::Pivot, 5, FaultAction::Throw, 0.0});
  plan.events.push_back(
      {FaultSite::Refactor, 2, FaultAction::PerturbEta, 0.25});
  FaultInjector injector(plan);

  std::vector<FaultAction> pivot_actions;
  for (int k = 0; k < 8; ++k) {
    pivot_actions.push_back(injector.poll(FaultSite::Pivot));
  }
  ASSERT_EQ(pivot_actions.size(), 8u);
  EXPECT_EQ(pivot_actions[2], FaultAction::NearSingularPivot);  // at == 3
  EXPECT_EQ(pivot_actions[4], FaultAction::Throw);              // at == 5
  for (const int k : {0, 1, 3, 5, 6, 7}) {
    EXPECT_EQ(pivot_actions[static_cast<std::size_t>(k)], FaultAction::None)
        << "pivot " << k + 1;
  }

  double magnitude = 0.0;
  EXPECT_EQ(injector.poll(FaultSite::Refactor, &magnitude),
            FaultAction::None);
  EXPECT_EQ(injector.poll(FaultSite::Refactor, &magnitude),
            FaultAction::PerturbEta);
  EXPECT_EQ(magnitude, 0.25);
  EXPECT_EQ(injector.poll(FaultSite::Refactor), FaultAction::None);

  EXPECT_EQ(injector.fired(), 3u);
  EXPECT_EQ(injector.observed(FaultSite::Pivot), 8u);
  EXPECT_EQ(injector.observed(FaultSite::Refactor), 3u);
  EXPECT_EQ(injector.observed(FaultSite::PricingRound), 0u);
}

TEST(FaultInjector, ActionAndSiteNamesAreStable) {
  EXPECT_STREQ(to_string(FaultSite::Pivot), "pivot");
  EXPECT_STREQ(to_string(FaultSite::Refactor), "refactor");
  EXPECT_STREQ(to_string(FaultSite::PricingRound), "pricing-round");
  EXPECT_STREQ(to_string(FaultAction::None), "none");
  EXPECT_STREQ(to_string(FaultAction::PerturbEta), "perturb-eta");
  EXPECT_STREQ(to_string(FaultAction::NearSingularPivot),
               "near-singular-pivot");
  EXPECT_STREQ(to_string(FaultAction::Throw), "throw");
  EXPECT_STREQ(to_string(FaultAction::TripStop), "trip-stop");
}

// Raw backend level, whole registry: a faulted solve must end in a
// documented SolveStatus (certified when Optimal) or raise FaultInjected
// for the containment layers above — never assert, hang, or return a
// bogus certificate. Recovered Optimal runs must match the fault-free
// objective exactly as a verdict (the basis may differ).
TEST(FaultInjection, BackendsSurviveSeededPlans) {
  std::uint64_t total_fired = 0;
  for (const std::string& backend : lp::lp_backend_names()) {
    for (int seed = 1; seed <= 12; ++seed) {
      Rng rng(500 + seed);
      const lp::Model model = lp::random_covering_model(rng, 6, 18);
      const lp::Solution baseline = lp::solve(model);

      const FaultPlan plan = FaultPlan::random(
          static_cast<std::uint64_t>(seed), 3, 40);
      FaultInjector injector(plan);
      lp::SimplexOptions options;
      options.fault = &injector;
      lp::Solution faulted;
      bool threw = false;
      try {
        faulted = lp::make_lp_backend(backend, model, options)->solve();
      } catch (const FaultInjected&) {
        threw = true;  // contained by portfolio/failover layers in prod
      }
      total_fired += injector.fired();
      if (threw) continue;
      switch (faulted.status) {
        case lp::SolveStatus::Optimal:
          lp::certify_optimal_solution(model, faulted);
          EXPECT_NEAR(faulted.objective, baseline.objective,
                      kTol * (1.0 + std::fabs(baseline.objective)))
              << backend << " seed " << seed;
          break;
        case lp::SolveStatus::Infeasible:
          // A feasibility verdict must agree with the clean run.
          EXPECT_EQ(baseline.status, lp::SolveStatus::Infeasible)
              << backend << " seed " << seed;
          break;
        case lp::SolveStatus::IterationLimit:   // tripped stop token
        case lp::SolveStatus::NumericalFailure:  // ladder ran dry
          break;
        default:
          FAIL() << backend << " seed " << seed << ": undocumented status";
      }
    }
  }
  EXPECT_GT(total_fired, 0u);  // the sweep genuinely engaged the plans
}

release::ConfigLpProblem small_problem() {
  release::ConfigLpProblem problem;
  problem.widths = {0.6, 0.35, 0.2};
  problem.releases = {0.0, 1.0};
  problem.demand = {{1.0, 2.0, 1.5}, {0.5, 1.0, 2.0}};
  problem.strip_width = 1.0;
  return problem;
}

// Configuration-LP level: the solver owns the failover barrier, so no
// exception may escape, and every exit is a documented status. A run that
// reports Optimal after recovery must reproduce the fault-free optimum;
// a fixed plan must be deterministic across reruns.
TEST(FaultInjection, ConfigLpRecoversOrDegradesHonestly) {
  const release::ConfigLpProblem problem = small_problem();
  release::ConfigLpOptions clean;
  const release::FractionalSolution baseline =
      release::solve_config_lp(problem, clean);
  ASSERT_TRUE(baseline.feasible);

  std::uint64_t total_fired = 0;
  int recoveries_observed = 0;
  for (const bool colgen : {false, true}) {
    for (int seed = 1; seed <= 12; ++seed) {
      const FaultPlan plan = FaultPlan::random(
          static_cast<std::uint64_t>(1000 + seed), 4, 60);
      auto run = [&]() -> release::FractionalSolution {
        FaultInjector injector(plan);
        release::ConfigLpOptions options;
        options.use_column_generation = colgen;
        options.fault = &injector;
        const release::FractionalSolution out =
            release::solve_config_lp(problem, options);
        total_fired += injector.fired();
        return out;
      };
      const release::FractionalSolution a = run();
      switch (a.status) {
        case lp::SolveStatus::Optimal:
          EXPECT_NEAR(a.objective, baseline.objective,
                      kTol * (1.0 + std::fabs(baseline.objective)))
              << "colgen " << colgen << " seed " << seed;
          break;
        case lp::SolveStatus::IterationLimit:
        case lp::SolveStatus::NumericalFailure:
          break;  // honest degradation; no bogus certificate
        default:
          FAIL() << "colgen " << colgen << " seed " << seed
                 << ": undocumented status (the problem is feasible and "
                    "bounded)";
      }
      recoveries_observed += a.lp_refactor_retries + a.lp_residual_repairs +
                             a.lp_cold_restarts + a.master_failovers;
      // Determinism: the identical plan replays to the identical outcome.
      const release::FractionalSolution b = run();
      EXPECT_EQ(a.status, b.status)
          << "colgen " << colgen << " seed " << seed;
      EXPECT_EQ(a.feasible, b.feasible);
      if (a.feasible && b.feasible) {
        EXPECT_EQ(a.objective, b.objective) << "bitwise replay";
      }
      EXPECT_EQ(a.lp_cold_restarts, b.lp_cold_restarts);
      EXPECT_EQ(a.master_failovers, b.master_failovers);
    }
  }
  EXPECT_GT(total_fired, 0u);
  EXPECT_GT(recoveries_observed, 0);  // the ladder actually climbed
}

// Branch-and-price level: the anytime contract under injected faults.
// Whatever the plan does to the node LPs, solve() must return a valid
// bracket around the known certified optimum, a feasible packing, and a
// documented status — and replay deterministically.
TEST(FaultInjection, BnpKeepsAnytimeContractUnderFaults) {
  const auto family = gen::hard_integral_family(2);
  const double optimum = family.certificate.ip_height;

  std::uint64_t total_fired = 0;
  for (const bool colgen : {false, true}) {
    for (int seed = 1; seed <= 8; ++seed) {
      const FaultPlan plan = FaultPlan::random(
          static_cast<std::uint64_t>(2000 + seed), 4, 120);
      auto run = [&]() -> bnp::BnpResult {
        FaultInjector injector(plan);
        bnp::BnpOptions options;
        options.lp.use_column_generation = colgen;
        options.lp.fault = &injector;
        const bnp::BnpResult out = bnp::solve(family.instance, options);
        total_fired += injector.fired();
        return out;
      };
      const bnp::BnpResult a = run();
      const std::string tag = "colgen " + std::to_string(colgen) +
                              " seed " + std::to_string(seed);
      // Documented status, valid bracket, feasible realization — always.
      EXPECT_TRUE(a.status == bnp::BnpStatus::Optimal ||
                  a.status == bnp::BnpStatus::NodeLimit ||
                  a.status == bnp::BnpStatus::TimeLimit ||
                  a.status == bnp::BnpStatus::Stalled)
          << tag;
      EXPECT_LE(a.dual_bound, optimum + kTol) << tag;
      EXPECT_GE(a.height, optimum - kTol) << tag;
      EXPECT_LE(a.dual_bound, a.height + kTol) << tag;
      EXPECT_TRUE(
          testing::placement_valid(family.instance, a.packing.placement))
          << tag;
      if (a.status == bnp::BnpStatus::Optimal) {
        EXPECT_NEAR(a.height, optimum, kTol) << tag;
      }
      const bnp::BnpResult b = run();
      EXPECT_EQ(a.status, b.status) << tag;
      EXPECT_EQ(a.height, b.height) << tag;
      EXPECT_EQ(a.dual_bound, b.dual_bound) << tag;
      EXPECT_EQ(a.nodes, b.nodes) << tag;
    }
  }
  EXPECT_GT(total_fired, 0u);
}

}  // namespace
}  // namespace stripack
