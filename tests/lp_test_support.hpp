// Shared helpers for the LP solver test binaries: optimality certification
// (primal/dual feasibility, strong duality, complementary slackness) and a
// deterministic random covering/packing model generator mirroring the
// configuration LP's shape.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace stripack::lp {

/// Certifies optimality of a claimed solution against the model: primal
/// feasibility, dual feasibility (nonnegative reduced costs and correct
/// dual signs per row sense), strong duality, and complementary slackness.
inline void certify_optimal_solution(const Model& model,
                                     const Solution& solution,
                                     double tol = 1e-6) {
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  ASSERT_EQ(static_cast<int>(solution.x.size()), model.num_cols());
  ASSERT_EQ(static_cast<int>(solution.duals.size()), model.num_rows());
  const auto activity = model.row_activity(solution.x);
  double dual_objective = 0.0;
  for (int r = 0; r < model.num_rows(); ++r) {
    const double y = solution.duals[r];
    const double slack = activity[r] - model.row_rhs(r);
    switch (model.row_sense(r)) {
      case Sense::LE:
        EXPECT_LE(slack, tol) << "row " << r;
        EXPECT_LE(y, tol) << "row " << r << " dual sign";
        break;
      case Sense::GE:
        EXPECT_GE(slack, -tol) << "row " << r;
        EXPECT_GE(y, -tol) << "row " << r << " dual sign";
        break;
      case Sense::EQ:
        EXPECT_NEAR(slack, 0.0, tol) << "row " << r;
        break;
    }
    // Complementary slackness: an off-bound row carries a zero dual.
    EXPECT_NEAR(y * slack, 0.0, 10 * tol * (1.0 + std::fabs(y)))
        << "row " << r << " complementary slackness";
    dual_objective += y * model.row_rhs(r);
  }
  for (const double v : solution.x) EXPECT_GE(v, -tol);
  for (int c = 0; c < model.num_cols(); ++c) {
    double rc = model.column_cost(c);
    for (const RowEntry& e : model.column_entries(c)) {
      rc -= solution.duals[e.row] * e.coef;
    }
    EXPECT_GE(rc, -tol) << "column " << c << " reduced cost";
    // Complementary slackness: a positive variable has zero reduced cost.
    EXPECT_NEAR(solution.x[c] * rc, 0.0,
                10 * tol * (1.0 + std::fabs(solution.x[c])))
        << "column " << c << " complementary slackness";
  }
  EXPECT_NEAR(solution.objective, dual_objective,
              tol * (1.0 + std::fabs(dual_objective)));
  EXPECT_NEAR(solution.objective, model.objective_value(solution.x), tol);
}

/// Random covering/packing LP mirroring the configuration LP's shape:
/// mixed senses, nonnegative-ish rhs, sparse positive columns. Always
/// bounded; feasibility depends on the draw.
inline Model random_covering_model(Rng& rng, int rows, int cols) {
  Model m;
  for (int r = 0; r < rows; ++r) {
    const double rhs = rng.uniform(-2.0, 6.0);
    const Sense sense = r % 3 == 0 ? Sense::GE : Sense::LE;
    m.add_row(sense,
              sense == Sense::GE ? std::max(0.0, rhs) : std::fabs(rhs) + 1.0);
  }
  for (int c = 0; c < cols; ++c) {
    std::vector<RowEntry> entries;
    for (int r = 0; r < rows; ++r) {
      if (rng.bernoulli(0.4)) entries.push_back({r, rng.uniform(0.1, 2.0)});
    }
    m.add_column(rng.uniform(0.5, 3.0), entries);
  }
  return m;
}

}  // namespace stripack::lp
