// Tests for the baseline algorithms: list scheduling, level packing, and
// the release-time greedies.
#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/validate.hpp"
#include "gen/release_gen.hpp"
#include "precedence/level_pack.hpp"
#include "precedence/list_schedule.hpp"
#include "release/baselines.hpp"
#include "test_support.hpp"

namespace stripack {
namespace {

// ---------------------------------------------------------- list_schedule
TEST(ListSchedule, EmptyAndSingle) {
  Instance empty;
  EXPECT_DOUBLE_EQ(list_schedule(empty).height(), 0.0);
  Instance single;
  single.add_item(0.5, 2.0);
  const Packing p = list_schedule(single);
  EXPECT_DOUBLE_EQ(p.height(), 2.0);
  EXPECT_TRUE(testing::placement_valid(single, p.placement));
}

TEST(ListSchedule, PacksIndependentItemsSideBySide) {
  Instance ins = testing::make_instance({{0.5, 1.0}, {0.5, 1.0}});
  const Packing p = list_schedule(ins);
  EXPECT_NEAR(p.height(), 1.0, 1e-9);
}

TEST(ListSchedule, ChainRunsSequentially) {
  Instance ins;
  const VertexId a = ins.add_item(0.9, 1.0);
  const VertexId b = ins.add_item(0.9, 1.0);
  ins.add_precedence(a, b);
  const Packing p = list_schedule(ins);
  EXPECT_TRUE(testing::placement_valid(ins, p.placement));
  EXPECT_NEAR(p.height(), 2.0, 1e-9);
}

TEST(ListSchedule, RespectsReleaseTimes) {
  Instance ins;
  ins.add_item(0.5, 1.0, 3.0);
  const Packing p = list_schedule(ins);
  EXPECT_GE(p.placement[0].y, 3.0 - 1e-9);
}

TEST(ListSchedule, BackfillsGapsBelowTop) {
  // Tall narrow item, then a wide one that must go above... then a narrow
  // short one that still fits beside the tower at t=0.
  Instance ins;
  ins.add_item(0.5, 3.0);   // tower
  ins.add_item(0.8, 1.0);   // too wide beside tower: goes on top
  ins.add_item(0.4, 1.0);   // fits beside the tower at the bottom
  ListScheduleOptions options;
  options.priority = ListPriority::InputOrder;
  const Packing p = list_schedule(ins, options);
  EXPECT_TRUE(testing::placement_valid(ins, p.placement));
  EXPECT_NEAR(p.placement[2].y, 0.0, 1e-9);
}

class ListScheduleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ListScheduleSweep, ValidOnRandomDags) {
  Rng rng(GetParam());
  const Instance ins =
      testing::random_precedence_instance(50, 0.08, gen::RectParams{}, rng);
  for (ListPriority priority :
       {ListPriority::CriticalPathFirst, ListPriority::InputOrder,
        ListPriority::DecreasingArea}) {
    ListScheduleOptions options;
    options.priority = priority;
    const Packing p = list_schedule(ins, options);
    EXPECT_TRUE(testing::placement_valid(ins, p.placement));
    EXPECT_GE(p.height(), critical_path_lower_bound(ins) - 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ListScheduleSweep,
                         ::testing::Values(11u, 22u, 33u, 44u));

TEST(ListSchedule, HandlesPrecedenceAndReleasesTogether) {
  // The paper studies the two constraint families separately and leaves
  // their combination open; the list scheduler supports both at once —
  // our "future work" extension, exercised here.
  Instance ins;
  const VertexId a = ins.add_item(0.6, 1.0, 0.0);
  const VertexId b = ins.add_item(0.6, 1.0, 5.0);  // released late
  const VertexId c = ins.add_item(0.3, 1.0, 0.0);
  ins.add_precedence(a, b);
  const Packing p = list_schedule(ins);
  EXPECT_TRUE(testing::placement_valid(ins, p.placement));
  // b waits for both its predecessor (top at 1) and its release (5).
  EXPECT_GE(p.placement[b].y, 5.0 - 1e-9);
  EXPECT_GE(p.placement[b].y,
            p.placement[a].y + ins.item(a).height() - 1e-9);
  (void)c;
}

class CombinedConstraintSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CombinedConstraintSweep, ValidWithBothConstraintFamilies) {
  Rng rng(GetParam());
  gen::RectParams params;
  auto rects = gen::random_rects(40, params, rng);
  Instance ins;
  for (const Rect& r : rects) {
    ins.add_item(r.width, r.height, rng.uniform(0.0, 5.0));
  }
  const Dag dag = gen::gnp_dag(40, 0.08, rng);
  for (const Edge& e : dag.edges()) ins.add_precedence(e.from, e.to);
  const Packing p = list_schedule(ins);
  EXPECT_TRUE(testing::placement_valid(ins, p.placement));
  EXPECT_GE(p.height(), combined_lower_bound(ins) - 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CombinedConstraintSweep,
                         ::testing::Values(101u, 202u, 303u));

// -------------------------------------------------------------- level_pack
TEST(LevelPack, LevelsAreStacked) {
  Instance ins;
  const VertexId a = ins.add_item(0.5, 1.0);
  const VertexId b = ins.add_item(0.5, 2.0);
  ins.add_precedence(a, b);
  const auto result = level_pack(ins);
  EXPECT_EQ(result.levels, 2u);
  EXPECT_TRUE(testing::placement_valid(ins, result.packing.placement));
  EXPECT_NEAR(result.packing.height(), 3.0, 1e-9);
}

TEST(LevelPack, AntichainStaysOneBand) {
  Instance ins = testing::make_instance({{0.3, 1.0}, {0.3, 1.0}, {0.3, 1.0}});
  const auto result = level_pack(ins);
  EXPECT_EQ(result.levels, 1u);
  EXPECT_NEAR(result.packing.height(), 1.0, 1e-9);
}

class LevelPackSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LevelPackSweep, ValidOnRandomDags) {
  Rng rng(GetParam());
  const Instance ins =
      testing::random_precedence_instance(60, 0.05, gen::RectParams{}, rng);
  const auto result = level_pack(ins);
  EXPECT_TRUE(testing::placement_valid(ins, result.packing.placement));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevelPackSweep,
                         ::testing::Values(5u, 15u, 25u));

// --------------------------------------------------------- release greedies
TEST(ReleaseBaselines, ShelfGreedyRespectsReleases) {
  Instance ins;
  ins.add_item(0.5, 1.0, 0.0);
  ins.add_item(0.5, 1.0, 5.0);
  const Packing p = release::release_shelf_greedy(ins);
  EXPECT_TRUE(testing::placement_valid(ins, p.placement));
  EXPECT_GE(p.placement[1].y, 5.0 - 1e-9);
}

TEST(ReleaseBaselines, SkylineGreedyFillsEarlySpace) {
  Instance ins;
  ins.add_item(0.5, 1.0, 0.0);
  ins.add_item(0.5, 1.0, 0.0);
  ins.add_item(0.5, 1.0, 0.5);
  const Packing p = release::release_skyline_greedy(ins);
  EXPECT_TRUE(testing::placement_valid(ins, p.placement));
  // Two at 0 side by side; the third floats at its release 0.5 or above.
  EXPECT_LE(p.height(), 2.0 + 1e-9);
}

class ReleaseBaselineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReleaseBaselineSweep, ValidOnPoissonWorkloads) {
  Rng rng(GetParam());
  gen::ReleaseWorkloadParams params;
  params.n = 80;
  params.K = 5;
  const Instance ins = gen::poisson_release_workload(params, rng);
  for (const Packing& p : {release::release_shelf_greedy(ins),
                           release::release_skyline_greedy(ins)}) {
    EXPECT_TRUE(testing::placement_valid(ins, p.placement));
    EXPECT_GE(p.height(), release_lower_bound(ins) - 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReleaseBaselineSweep,
                         ::testing::Values(7u, 17u, 27u, 37u));

}  // namespace
}  // namespace stripack
