// Portfolio determinism tests (lp/portfolio.hpp): racing returns the same
// certified verdict no matter which entry finishes first (perturbed with
// seeded start-time stagger), round-robin is bit-identical to a serial
// re-derivation of its selection rule (hence independent of thread count
// and scheduling), and the Auto shape heuristic is exercised end-to-end
// through the configuration-LP solver, where Race / RoundRobin must match
// the single-backend baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "lp/backend.hpp"
#include "lp/model.hpp"
#include "lp/portfolio.hpp"
#include "lp/simplex.hpp"
#include "lp_test_support.hpp"
#include "release/config_lp.hpp"
#include "util/rng.hpp"

namespace stripack::lp {
namespace {

TEST(LpPortfolio, RaceReturnsCertifiedVerdictUnderStagger) {
  for (int seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const Model model = random_covering_model(rng, 5, 14);
    const Solution baseline = solve(model);
    // Perturb which entry finishes first; the certified verdict (status,
    // and the optimal objective when feasible) must never move.
    for (unsigned stagger = 0; stagger <= 4; ++stagger) {
      PortfolioOptions options;
      options.mode = PortfolioMode::Race;
      options.stagger_seed = stagger;
      const PortfolioResult raced = portfolio_solve(model, options);
      ASSERT_GE(raced.winner, 0) << "seed " << seed;
      EXPECT_FALSE(raced.winner_label.empty());
      ASSERT_EQ(raced.solution.status, baseline.status)
          << "seed " << seed << " stagger " << stagger << " winner "
          << raced.winner_label;
      if (baseline.optimal()) {
        certify_optimal_solution(model, raced.solution);
        EXPECT_NEAR(raced.solution.objective, baseline.objective,
                    1e-6 * (1.0 + std::fabs(baseline.objective)))
            << "seed " << seed << " stagger " << stagger;
      }
    }
  }
}

TEST(LpPortfolio, RaceAgreesOnUnbounded) {
  Model model;
  const int r = model.add_row(Sense::GE, 1.0);
  model.add_column(-1.0, std::vector<RowEntry>{{r, 1.0}});
  PortfolioOptions options;
  options.mode = PortfolioMode::Race;
  const PortfolioResult raced = portfolio_solve(model, options);
  ASSERT_GE(raced.winner, 0);
  EXPECT_EQ(raced.solution.status, SolveStatus::Unbounded);
}

// The round-robin selection rule re-derived serially, one entry at a
// time, with fresh backends — no pool, no concurrency. The parallel
// portfolio must reproduce this bit for bit.
PortfolioResult round_robin_serial(const Model& model,
                                   const PortfolioOptions& options) {
  const std::vector<PortfolioEntry> entries =
      options.entries.empty() ? default_portfolio(model) : options.entries;
  PortfolioResult result;
  result.entry_status.assign(entries.size(), SolveStatus::IterationLimit);
  std::int64_t budget = options.round_robin_budget;
  for (int turn = 0; turn < options.max_turns; ++turn) {
    ++result.turns;
    std::vector<Solution> solutions;
    for (const PortfolioEntry& entry : entries) {
      SimplexOptions o = entry.options;
      o.max_iterations = budget;
      solutions.push_back(make_lp_backend(entry.backend, model, o)->solve());
    }
    for (std::size_t i = 0; i < entries.size(); ++i) {
      result.entry_status[i] = solutions[i].status;
      if (result.winner < 0 && is_conclusive(solutions[i].status)) {
        result.winner = static_cast<int>(i);
      }
    }
    if (result.winner >= 0) {
      result.solution = solutions[static_cast<std::size_t>(result.winner)];
      result.winner_label =
          entries[static_cast<std::size_t>(result.winner)].label();
      result.winner_backend =
          entries[static_cast<std::size_t>(result.winner)].backend;
      return result;
    }
    budget *= 2;
  }
  return result;  // unreachable at the tested budgets
}

void expect_bit_identical(const Solution& a, const Solution& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.phase1_iterations, b.phase1_iterations);
  EXPECT_EQ(a.dual_iterations, b.dual_iterations);
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    EXPECT_EQ(a.x[i], b.x[i]) << "x[" << i << "] differs in the last bit";
  }
  ASSERT_EQ(a.duals.size(), b.duals.size());
  for (std::size_t i = 0; i < a.duals.size(); ++i) {
    EXPECT_EQ(a.duals[i], b.duals[i]) << "dual " << i;
  }
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.basis, b.basis);
  EXPECT_EQ(a.basic_columns, b.basic_columns);
}

TEST(LpPortfolio, RoundRobinBitReproducible) {
  for (int seed = 1; seed <= 10; ++seed) {
    Rng rng(100 + seed);
    const Model model = random_covering_model(rng, 5, 14);
    PortfolioOptions options;
    options.mode = PortfolioMode::RoundRobin;
    const PortfolioResult serial = round_robin_serial(model, options);
    ASSERT_GE(serial.winner, 0) << "seed " << seed;
    // Repeated parallel runs on the shared pool (arbitrary scheduling,
    // >= 4 workers) must reproduce the serial derivation exactly —
    // winner, turn count, per-entry statuses, and every solution bit.
    for (int run = 0; run < 3; ++run) {
      const PortfolioResult parallel = portfolio_solve(model, options);
      EXPECT_EQ(parallel.winner, serial.winner) << "seed " << seed;
      EXPECT_EQ(parallel.turns, serial.turns) << "seed " << seed;
      EXPECT_EQ(parallel.winner_label, serial.winner_label);
      ASSERT_EQ(parallel.entry_status.size(), serial.entry_status.size());
      for (std::size_t i = 0; i < serial.entry_status.size(); ++i) {
        EXPECT_EQ(parallel.entry_status[i], serial.entry_status[i]);
      }
      expect_bit_identical(parallel.solution, serial.solution);
    }
  }
}

TEST(LpPortfolio, RoundRobinEscalatesBudgetDeterministically) {
  Rng rng(7);
  const Model model = random_covering_model(rng, 6, 18);
  PortfolioOptions options;
  options.mode = PortfolioMode::RoundRobin;
  options.round_robin_budget = 1;  // force several doubling turns
  const PortfolioResult a = portfolio_solve(model, options);
  const PortfolioResult b = portfolio_solve(model, options);
  ASSERT_GE(a.winner, 0);
  EXPECT_GT(a.turns, 1);
  EXPECT_EQ(a.winner, b.winner);
  EXPECT_EQ(a.turns, b.turns);
  expect_bit_identical(a.solution, b.solution);
}

TEST(LpPortfolio, AutoChoosesByShape) {
  Rng rng(3);
  const Model tiny = random_covering_model(rng, 4, 10);
  EXPECT_EQ(choose_backend(tiny), "dense");
  const Model big = random_covering_model(rng, 20, 60);
  EXPECT_EQ(choose_backend(big), kDefaultLpBackend);
  PortfolioOptions options;
  options.mode = PortfolioMode::Auto;
  const PortfolioResult result = portfolio_solve(tiny, options);
  EXPECT_EQ(result.winner_backend, "dense");
  if (result.solution.optimal()) {
    certify_optimal_solution(tiny, result.solution);
  }
}

TEST(LpPortfolio, ModeNamesRoundTrip) {
  for (const PortfolioMode mode :
       {PortfolioMode::Single, PortfolioMode::Auto, PortfolioMode::Race,
        PortfolioMode::RoundRobin}) {
    PortfolioMode parsed{};
    ASSERT_TRUE(parse_portfolio_mode(to_string(mode), parsed));
    EXPECT_EQ(parsed, mode);
  }
  PortfolioMode ignored{};
  EXPECT_FALSE(parse_portfolio_mode("interior-point", ignored));
}

// End-to-end through the configuration-LP solver (enumeration mode): the
// portfolio-raced master must land on the same certified optimum as the
// single-backend baseline, and round-robin must be run-to-run identical.
TEST(LpPortfolio, ConfigLpPortfolioMatchesSingleBackendBaseline) {
  release::ConfigLpProblem problem;
  problem.widths = {0.6, 0.35, 0.2};
  problem.releases = {0.0, 1.0};
  problem.demand = {{1.0, 2.0, 1.5}, {0.5, 1.0, 2.0}};
  problem.strip_width = 1.0;

  release::ConfigLpOptions base;
  const release::FractionalSolution single =
      release::solve_config_lp(problem, base);
  ASSERT_TRUE(single.feasible);

  for (const lp::PortfolioMode mode :
       {lp::PortfolioMode::Auto, lp::PortfolioMode::Race,
        lp::PortfolioMode::RoundRobin}) {
    release::ConfigLpOptions options;
    options.portfolio = mode;
    const release::FractionalSolution got =
        release::solve_config_lp(problem, options);
    ASSERT_TRUE(got.feasible) << to_string(mode);
    EXPECT_NEAR(got.objective, single.objective,
                1e-7 * (1.0 + std::fabs(single.objective)))
        << to_string(mode);
  }

  release::ConfigLpOptions rr;
  rr.portfolio = lp::PortfolioMode::RoundRobin;
  const release::FractionalSolution a = release::solve_config_lp(problem, rr);
  const release::FractionalSolution b = release::solve_config_lp(problem, rr);
  EXPECT_EQ(a.objective, b.objective);  // bitwise
  EXPECT_EQ(a.iterations, b.iterations);
}

// A registered backend whose every solve throws — the fault model for "a
// racer died mid-pivot". Registration is per test binary, so the
// conformance kit (separate binary) never sees it.
class ThrowingBackend final : public LpBackend {
 public:
  [[nodiscard]] const char* name() const override { return "always-throws"; }
  void sync_columns() override {}
  void sync_rows() override {}
  bool load_basis(const std::vector<int>&) override { return false; }
  [[nodiscard]] Solution solve() override {
    throw std::runtime_error("injected backend crash");
  }
  [[nodiscard]] Solution solve_dual(bool, double) override {
    throw std::runtime_error("injected backend crash");
  }
};

void register_throwing_backend() {
  register_lp_backend("always-throws",
                      [](const Model&, const SimplexOptions&) {
                        return std::make_unique<ThrowingBackend>();
                      });
}

// Exception containment at the race boundary: the throwing entry must be
// recorded as a NumericalFailure'd loser (with its reason in the
// diagnostics), never std::terminate through the thread pool, and the
// surviving entry's certified verdict must be unaffected.
TEST(LpPortfolio, RaceContainsThrowingEntry) {
  register_throwing_backend();
  Rng rng(21);
  const Model model = random_covering_model(rng, 5, 14);
  const Solution baseline = solve(model);
  ASSERT_TRUE(baseline.optimal());

  PortfolioOptions options;
  options.mode = PortfolioMode::Race;
  PortfolioEntry bad;
  bad.backend = "always-throws";
  PortfolioEntry good;
  good.backend = "dense";
  options.entries = {bad, good};

  const PortfolioResult raced = portfolio_solve(model, options);
  ASSERT_EQ(raced.winner, 1);
  EXPECT_EQ(raced.winner_backend, "dense");
  ASSERT_EQ(raced.entry_status.size(), 2u);
  EXPECT_EQ(raced.entry_status[0], SolveStatus::NumericalFailure);
  EXPECT_EQ(raced.diagnostics.failed_entries, 1);
  ASSERT_EQ(raced.diagnostics.entry_errors.size(), 2u);
  EXPECT_NE(raced.diagnostics.entry_errors[0].find("injected"),
            std::string::npos);
  EXPECT_TRUE(raced.diagnostics.entry_errors[1].empty());
  ASSERT_EQ(raced.solution.status, baseline.status);
  certify_optimal_solution(model, raced.solution);
  EXPECT_NEAR(raced.solution.objective, baseline.objective,
              1e-6 * (1.0 + std::fabs(baseline.objective)));
}

TEST(LpPortfolio, RoundRobinSurvivesDeadEntry) {
  register_throwing_backend();
  Rng rng(22);
  const Model model = random_covering_model(rng, 5, 14);
  PortfolioOptions options;
  options.mode = PortfolioMode::RoundRobin;
  PortfolioEntry bad;
  bad.backend = "always-throws";
  PortfolioEntry good;
  good.backend = kDefaultLpBackend;
  options.entries = {bad, good};
  const PortfolioResult result = portfolio_solve(model, options);
  ASSERT_EQ(result.winner, 1);
  EXPECT_EQ(result.entry_status[0], SolveStatus::NumericalFailure);
  EXPECT_EQ(result.diagnostics.failed_entries, 1);
  certify_optimal_solution(model, result.solution);
}

// Only when *every* entry fails does the portfolio throw, and then the
// structured lp::SolveError carries one reason per entry in entry order.
TEST(LpPortfolio, AllEntriesFailingRaisesSolveError) {
  register_throwing_backend();
  Rng rng(23);
  const Model model = random_covering_model(rng, 5, 14);
  PortfolioEntry bad;
  bad.backend = "always-throws";
  for (const PortfolioMode mode :
       {PortfolioMode::Single, PortfolioMode::Race,
        PortfolioMode::RoundRobin}) {
    PortfolioOptions options;
    options.mode = mode;
    // Single consults entries[0] only; give it exactly the entries it
    // will attempt so every recorded reason is a real failure.
    options.entries = mode == PortfolioMode::Single
                          ? std::vector<PortfolioEntry>{bad}
                          : std::vector<PortfolioEntry>{bad, bad};
    try {
      const PortfolioResult ignored = portfolio_solve(model, options);
      (void)ignored;
      FAIL() << "expected lp::SolveError in mode " << to_string(mode);
    } catch (const SolveError& e) {
      const std::vector<std::string>& reasons = e.entry_errors();
      ASSERT_FALSE(reasons.empty()) << to_string(mode);
      for (const std::string& reason : reasons) {
        EXPECT_NE(reason.find("injected"), std::string::npos)
            << to_string(mode);
      }
    }
  }
}

TEST(LpPortfolio, UnknownEntryBackendIsRejectedUpFront) {
  Rng rng(24);
  const Model model = random_covering_model(rng, 4, 10);
  PortfolioOptions options;
  options.mode = PortfolioMode::Race;
  PortfolioEntry ghost;
  ghost.backend = "no-such-backend";
  options.entries = {ghost};
  EXPECT_THROW((void)portfolio_solve(model, options), std::invalid_argument);
}

TEST(LpPortfolio, ConfigLpRejectsUnknownBackend) {
  release::ConfigLpProblem problem;
  problem.widths = {0.5};
  problem.releases = {0.0};
  problem.demand = {{1.0}};
  release::ConfigLpOptions options;
  options.backend = "no-such-backend";
  EXPECT_THROW(release::solve_config_lp(problem, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace stripack::lp
