// Metamorphic properties: relations that must hold between outputs on
// transformed inputs. These catch bugs that example-based tests miss
// (broken tie-breaking, accidental dependence on absolute scale, etc.).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/bounds.hpp"
#include "gen/rect_gen.hpp"
#include "gen/release_gen.hpp"
#include "packers/registry.hpp"
#include "precedence/dc.hpp"
#include "release/config_lp.hpp"
#include "test_support.hpp"

namespace stripack {
namespace {

std::vector<Rect> sample_rects(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  gen::RectParams params;
  params.min_width = 0.03;
  params.min_height = 0.03;
  return gen::random_rects(n, params, rng);
}

class MetamorphicSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetamorphicSweep, HeightScalingScalesShelfPackersExactly) {
  // Multiplying every height by c multiplies shelf-packer heights by c:
  // the decreasing-height order is unchanged, so the shelf structure is.
  const auto rects = sample_rects(GetParam(), 60);
  const double c = 3.25;
  std::vector<Rect> scaled = rects;
  for (Rect& r : scaled) r.height *= c;
  for (const char* name : {"NFDH", "FFDH", "BFDH"}) {
    const auto packer = make_packer(name);
    const double base = packer->pack(rects, 1.0).height;
    const double big = packer->pack(scaled, 1.0).height;
    EXPECT_NEAR(big, c * base, 1e-7 * (1.0 + big)) << name;
  }
}

TEST_P(MetamorphicSweep, JointWidthAndStripScalingIsInvariant) {
  // Scaling all widths and the strip width together changes nothing.
  const auto rects = sample_rects(GetParam() + 1000, 60);
  const double c = 7.5;
  std::vector<Rect> scaled = rects;
  for (Rect& r : scaled) r.width *= c;
  for (const auto& packer : all_packers()) {
    const double base = packer->pack(rects, 1.0).height;
    const double wide = packer->pack(scaled, c).height;
    EXPECT_NEAR(base, wide, 1e-7 * (1.0 + base)) << packer->name();
  }
}

TEST_P(MetamorphicSweep, SortedPackersArePermutationInvariant) {
  // Heights are continuous random values (ties have measure zero), so the
  // decreasing-height packers must not depend on input order.
  auto rects = sample_rects(GetParam() + 2000, 50);
  Rng rng(GetParam() + 3000);
  auto shuffled = rects;
  rng.shuffle(shuffled);
  for (const char* name : {"NFDH", "FFDH", "BFDH", "Sleator"}) {
    const auto packer = make_packer(name);
    EXPECT_NEAR(packer->pack(rects, 1.0).height,
                packer->pack(shuffled, 1.0).height, 1e-9)
        << name;
  }
}

TEST_P(MetamorphicSweep, DcScalesWithUniformHeightScaling) {
  Rng rng(GetParam() + 4000);
  gen::RectParams params;
  const Instance ins =
      testing::random_precedence_instance(40, 0.08, params, rng);
  const double c = 2.5;
  std::vector<Item> scaled_items(ins.items().begin(), ins.items().end());
  for (Item& it : scaled_items) it.rect.height *= c;
  Instance scaled(std::move(scaled_items));
  for (const Edge& e : ins.dag().edges()) scaled.add_precedence(e.from, e.to);

  const double base = dc_pack(ins).packing.height();
  const double big = dc_pack(scaled).packing.height();
  EXPECT_NEAR(big, c * base, 1e-6 * (1.0 + big));
}

TEST_P(MetamorphicSweep, ConfigLpShiftBound) {
  // Shifting every release up by c raises the fractional optimum by at
  // most c and never lowers it.
  Rng rng(GetParam() + 5000);
  gen::ReleaseWorkloadParams params;
  params.n = 30;
  params.K = 3;
  const Instance ins = gen::poisson_release_workload(params, rng);
  const double c = 1.7;
  std::vector<Item> shifted_items(ins.items().begin(), ins.items().end());
  for (Item& it : shifted_items) it.release += c;
  const Instance shifted(std::move(shifted_items));

  const double base = release::fractional_lower_bound(ins);
  const double moved = release::fractional_lower_bound(shifted);
  EXPECT_GE(moved, base - 1e-6);
  EXPECT_LE(moved, base + c + 1e-6);
}

TEST_P(MetamorphicSweep, ConfigLpPermutationInvariantUnderEveryPricingRule) {
  // The LP sees only aggregated (width, release) demand, so permuting the
  // items must leave the fractional optimum bit-for-bit stable up to
  // solver tolerance — under each pricing rule, and the rules must also
  // agree with each other (they walk different pivot sequences to the
  // same optimum).
  Rng rng(GetParam() + 7000);
  gen::ReleaseWorkloadParams params;
  params.n = 24;
  params.K = 3;
  const Instance ins = gen::poisson_release_workload(params, rng);
  std::vector<Item> shuffled_items(ins.items().begin(), ins.items().end());
  Rng shuffler(GetParam() + 7500);
  shuffler.shuffle(shuffled_items);
  const Instance shuffled(std::move(shuffled_items), ins.strip_width());

  double first = 0.0;
  bool have_first = false;
  for (const lp::PricingRule rule :
       {lp::PricingRule::Dantzig, lp::PricingRule::Bland,
        lp::PricingRule::SteepestEdge}) {
    release::ConfigLpOptions options;
    options.pricing = rule;
    const double base = release::fractional_lower_bound(ins, options);
    const double permuted = release::fractional_lower_bound(shuffled, options);
    EXPECT_NEAR(base, permuted, 1e-6 * (1.0 + base));
    if (!have_first) {
      first = base;
      have_first = true;
    } else {
      EXPECT_NEAR(base, first, 1e-6 * (1.0 + first));
    }
  }
}

TEST_P(MetamorphicSweep, ConfigLpWidthScalingInvariantUnderEveryPricingRule) {
  // Scaling every width and the strip width together relabels the
  // configurations without changing which ones fit: the LP value is
  // invariant, whichever pricing rule drives the simplex.
  Rng rng(GetParam() + 8000);
  gen::ReleaseWorkloadParams params;
  params.n = 24;
  params.K = 3;
  const Instance ins = gen::poisson_release_workload(params, rng);
  const double c = 3.5;
  std::vector<Item> scaled_items(ins.items().begin(), ins.items().end());
  for (Item& it : scaled_items) it.rect.width *= c;
  const Instance scaled(std::move(scaled_items), c * ins.strip_width());

  for (const lp::PricingRule rule :
       {lp::PricingRule::Dantzig, lp::PricingRule::Bland,
        lp::PricingRule::SteepestEdge}) {
    release::ConfigLpOptions options;
    options.pricing = rule;
    const double base = release::fractional_lower_bound(ins, options);
    const double wide = release::fractional_lower_bound(scaled, options);
    EXPECT_NEAR(base, wide, 1e-6 * (1.0 + base));
    // Column generation must land on the same value as enumeration under
    // the same rule (it prices from singleton seeds instead).
    release::ConfigLpOptions colgen = options;
    colgen.use_column_generation = true;
    const double generated = release::fractional_lower_bound(scaled, colgen);
    EXPECT_NEAR(generated, wide, 1e-6 * (1.0 + wide));
  }
}

TEST_P(MetamorphicSweep, WiderStripNeverHurtsNextFit) {
  // With a wider strip, every Next-Fit shelf absorbs a (weakly) longer
  // prefix of the sorted sequence, so shelf k starts no earlier in the
  // sequence and the total height never increases.
  const auto rects = sample_rects(GetParam() + 6000, 60);
  const auto packer = make_packer("NFDH");
  double last = packer->pack(rects, 1.0).height;
  for (double width : {1.25, 1.5, 2.0, 4.0}) {
    const double wider = packer->pack(rects, width).height;
    EXPECT_LE(wider, last + 1e-9) << "strip width " << width;
    last = wider;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetamorphicSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Metamorphic, ReleaseRescalingScalesLpHeight) {
  // Scaling all releases AND all heights by c scales the fractional
  // optimum by c (time-unit invariance)... heights are bounded by 1 in the
  // APTAS but the LP itself has no such restriction.
  Rng rng(777);
  gen::ReleaseWorkloadParams params;
  params.n = 25;
  params.K = 3;
  const Instance ins = gen::poisson_release_workload(params, rng);
  const double c = 0.5;
  std::vector<Item> scaled_items(ins.items().begin(), ins.items().end());
  for (Item& it : scaled_items) {
    it.release *= c;
    it.rect.height *= c;
  }
  const Instance scaled(std::move(scaled_items));
  const double base = release::fractional_lower_bound(ins);
  const double small = release::fractional_lower_bound(scaled);
  EXPECT_NEAR(small, c * base, 1e-6 * (1.0 + base));
}

}  // namespace
}  // namespace stripack
