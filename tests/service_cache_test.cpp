// Result-cache canonical-key tests: the metamorphic pair (permuting item
// order, rescaling all widths with the strip by a common factor) must
// map to the same cache identity, while a change in release times only —
// same widths, same heights — must not collide. Plus the bounded-
// staleness and capacity-eviction mechanics of the per-class cache.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "service/canonical.hpp"
#include "service/solver_service.hpp"
#include "test_support.hpp"

namespace stripack::service {
namespace {

Instance make(const std::vector<std::array<double, 3>>& rows,
              double strip) {
  std::vector<Item> items;
  items.reserve(rows.size());
  for (const std::array<double, 3>& r : rows) {
    items.push_back(Item{Rect{r[0], r[1]}, r[2]});
  }
  return Instance(std::move(items), strip);
}

TEST(CanonicalKey, PermutationInvariant) {
  const Instance a = make({{4, 2, 0}, {6, 3, 1}, {5, 1, 0}}, 10);
  const Instance b = make({{5, 1, 0}, {4, 2, 0}, {6, 3, 1}}, 10);
  const CanonicalRequest ca = canonicalize(a);
  const CanonicalRequest cb = canonicalize(b);
  EXPECT_EQ(ca.key, cb.key);
  EXPECT_EQ(ca.class_signature, cb.class_signature);
}

TEST(CanonicalKey, CommonWidthScalingInvariant) {
  // Power-of-two factor: width/strip round-trips exactly in floating
  // point, which is the documented exactness domain of the key.
  const Instance a = make({{4, 2, 0}, {6, 3, 1}, {5, 1, 0}}, 10);
  const Instance b = make({{16, 2, 0}, {24, 3, 1}, {20, 1, 0}}, 40);
  const CanonicalRequest ca = canonicalize(a);
  const CanonicalRequest cb = canonicalize(b);
  EXPECT_EQ(ca.key, cb.key);
  EXPECT_EQ(ca.class_signature, cb.class_signature);
  EXPECT_DOUBLE_EQ(ca.scale, 10.0);
  EXPECT_DOUBLE_EQ(cb.scale, 40.0);
}

TEST(CanonicalKey, ReleaseChangeDoesNotCollide) {
  // Identical widths and heights; only the release times differ. These
  // are different problems and must have different identities.
  const Instance a = make({{4, 2, 0}, {6, 3, 1}, {5, 1, 0}}, 10);
  const Instance b = make({{4, 2, 0}, {6, 3, 2}, {5, 1, 0}}, 10);
  const CanonicalRequest ca = canonicalize(a);
  const CanonicalRequest cb = canonicalize(b);
  EXPECT_NE(ca.key, cb.key);
  // The release grid is part of the master's row structure, so the
  // class changes too.
  EXPECT_NE(ca.class_signature, cb.class_signature);
}

TEST(CanonicalKey, DemandChangeSharesClassButNotKey) {
  // Same widths and releases, different heights: different cache
  // identity, but the same warm master serves both (demand is pure rhs).
  const Instance a = make({{4, 2, 0}, {6, 3, 0}}, 10);
  const Instance b = make({{4, 5, 0}, {6, 3, 0}}, 10);
  const CanonicalRequest ca = canonicalize(a);
  const CanonicalRequest cb = canonicalize(b);
  EXPECT_NE(ca.key, cb.key);
  EXPECT_EQ(ca.class_signature, cb.class_signature);
}

TEST(CanonicalKey, MapPlacementInvertsOrderAndScale) {
  const Instance a = make({{6, 3, 1}, {4, 2, 0}}, 10);
  const CanonicalRequest c = canonicalize(a);
  // Canonical order sorts by (width/strip, height, release): the 4-wide
  // item first, then the 6-wide one.
  ASSERT_EQ(c.order.size(), 2u);
  EXPECT_EQ(c.order[0], 1u);
  EXPECT_EQ(c.order[1], 0u);
  const Placement canonical = {Position{0.0, 0.0}, Position{0.4, 1.0}};
  const Placement mapped = map_placement(c, canonical);
  ASSERT_EQ(mapped.size(), 2u);
  // Item 1 (4-wide) was canonical item 0; x scales by the strip width.
  EXPECT_DOUBLE_EQ(mapped[1].x, 0.0);
  EXPECT_DOUBLE_EQ(mapped[1].y, 0.0);
  EXPECT_DOUBLE_EQ(mapped[0].x, 4.0);
  EXPECT_DOUBLE_EQ(mapped[0].y, 1.0);
}

TEST(ServiceCache, MetamorphicDuplicatesHit) {
  SolverService service;
  (void)service.enqueue(make({{4, 2, 0}, {6, 2, 0}, {4, 3, 0}}, 10));
  // Permuted.
  (void)service.enqueue(make({{4, 3, 0}, {4, 2, 0}, {6, 2, 0}}, 10));
  // Width-rescaled by 2.
  (void)service.enqueue(make({{8, 2, 0}, {12, 2, 0}, {8, 3, 0}}, 20));
  const std::vector<ServiceResponse> responses = service.run();
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_FALSE(responses[0].cache_hit);
  EXPECT_TRUE(responses[1].cache_hit);
  EXPECT_TRUE(responses[2].cache_hit);
  for (const ServiceResponse& r : responses) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_DOUBLE_EQ(r.height, responses[0].height);
    EXPECT_DOUBLE_EQ(r.dual_bound, responses[0].dual_bound);
  }
  EXPECT_EQ(service.stats().cache_hits, 2u);
}

TEST(ServiceCache, CacheHitPlacementIsRemappedPerRequest) {
  const Instance original = make({{4, 2, 0}, {6, 2, 0}}, 10);
  const Instance scaled = make({{12, 2, 0}, {8, 2, 0}}, 20);
  SolverService service;
  (void)service.enqueue(original);
  (void)service.enqueue(scaled);
  const std::vector<ServiceResponse> responses = service.run();
  ASSERT_EQ(responses.size(), 2u);
  ASSERT_TRUE(responses[1].cache_hit);
  // The cached canonical placement must come back in *this* request's
  // units and item order, and be a valid packing for it.
  EXPECT_TRUE(testing::placement_valid(original, responses[0].placement));
  EXPECT_TRUE(testing::placement_valid(scaled, responses[1].placement));
}

TEST(ServiceCache, ReleaseVariantsDoNotShareEntries) {
  SolverService service;
  (void)service.enqueue(make({{4, 2, 0}, {6, 3, 0}}, 10));
  (void)service.enqueue(make({{4, 2, 1}, {6, 3, 0}}, 10));
  const std::vector<ServiceResponse> responses = service.run();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses[0].cache_hit);
  EXPECT_FALSE(responses[1].cache_hit);
  // The released variant cannot start item 0 before y = 1.
  EXPECT_GE(responses[1].height, responses[0].height);
}

TEST(ServiceCache, StalenessBoundForcesResolve) {
  ServiceOptions options;
  options.cache_staleness = 1;
  SolverService service(options);
  const Instance instance = make({{4, 2, 0}, {6, 2, 0}}, 10);
  (void)service.enqueue(instance);  // tick 1: solve, entry at tick 1
  (void)service.enqueue(instance);  // tick 2: age 1 <= 1, hit
  (void)service.enqueue(instance);  // tick 3: age 2 > 1, stale re-solve
  const std::vector<ServiceResponse> responses = service.run();
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_FALSE(responses[0].cache_hit);
  EXPECT_TRUE(responses[1].cache_hit);
  EXPECT_FALSE(responses[2].cache_hit);
}

TEST(ServiceCache, CapacityEvictsOldestEntry) {
  ServiceOptions options;
  options.cache_capacity = 1;
  SolverService service(options);
  const Instance a = make({{4, 2, 0}, {6, 2, 0}}, 10);
  const Instance b = make({{4, 3, 0}, {6, 1, 0}}, 10);
  (void)service.enqueue(a);  // solve, cache {a}
  (void)service.enqueue(b);  // solve, evicts a: cache {b}
  (void)service.enqueue(a);  // miss again — proof a was evicted
  (void)service.enqueue(a);  // back in the cache now
  const std::vector<ServiceResponse> responses = service.run();
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_FALSE(responses[0].cache_hit);
  EXPECT_FALSE(responses[1].cache_hit);
  EXPECT_FALSE(responses[2].cache_hit);
  EXPECT_TRUE(responses[3].cache_hit);
}

}  // namespace
}  // namespace stripack::service
