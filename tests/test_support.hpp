// Shared helpers for the stripack test suite.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "core/instance.hpp"
#include "core/validate.hpp"
#include "gen/dag_gen.hpp"
#include "gen/rect_gen.hpp"
#include "util/rng.hpp"

namespace stripack::testing {

/// Builds an instance from bare (width, height) pairs.
inline Instance make_instance(
    std::initializer_list<std::pair<double, double>> dims) {
  std::vector<Item> items;
  for (const auto& [w, h] : dims) items.push_back(Item{Rect{w, h}, 0.0});
  return Instance(std::move(items));
}

/// Asserts that a placement is valid, with the report text on failure.
inline ::testing::AssertionResult placement_valid(const Instance& instance,
                                                  const Placement& placement) {
  const ValidationReport report = validate(instance, placement);
  if (report.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << report.summary();
}

/// Random precedence instance: rectangles from `params`, DAG g(n, p).
inline Instance random_precedence_instance(std::size_t n, double p,
                                           const gen::RectParams& params,
                                           Rng& rng) {
  auto rects = gen::random_rects(n, params, rng);
  std::vector<Item> items;
  items.reserve(n);
  for (const Rect& r : rects) items.push_back(Item{r, 0.0});
  Instance instance(std::move(items));
  const Dag dag = gen::gnp_dag(n, p, rng);
  for (const Edge& e : dag.edges()) instance.add_precedence(e.from, e.to);
  return instance;
}

}  // namespace stripack::testing
