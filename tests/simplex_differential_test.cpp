// Randomized differential suite for the LP backends: every registered
// `lp::LpBackend` — for the eta-file engine, every code path (pricing
// rules x refactorization cadence x scan threading) — is cross-checked
// against a trivially-correct in-test dense tableau simplex on hundreds
// of seeded random LPs. The in-test reference stays deliberately separate
// from the shipped `lp/dense_backend` (which is itself a sweep subject):
// it uses Bland's rule throughout and a full-tableau update with no
// warm-start machinery at all, so any disagreement points at the backend
// under test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "lp/backend.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "lp_test_support.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace stripack::lp {
namespace {

constexpr double kRefTol = 1e-9;

enum class RefStatus { Optimal, Infeasible, Unbounded };

struct RefSolution {
  RefStatus status = RefStatus::Optimal;
  double objective = 0.0;
  std::vector<double> x;
};

// Dense tableau two-phase simplex with Bland's rule — the reference
// implementation. Deliberately the most literal textbook version: the full
// tableau is updated by row operations every pivot, artificials are kept
// and guarded (a basic artificial with a nonzero direction component
// forces a degenerate pivot that drives it out), and entering variables
// are the first improving index. Slow and simple on purpose.
RefSolution reference_solve(const Model& model) {
  const int m = model.num_rows();
  const int n = model.num_cols();

  // Standard form with rhs >= 0: structural | slack/surplus | artificial.
  std::vector<double> row_sign(static_cast<std::size_t>(m), 1.0);
  std::vector<Sense> sense(static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) {
    sense[r] = model.row_sense(r);
    if (model.row_rhs(r) < 0.0) {
      row_sign[r] = -1.0;
      if (sense[r] == Sense::LE) {
        sense[r] = Sense::GE;
      } else if (sense[r] == Sense::GE) {
        sense[r] = Sense::LE;
      }
    }
  }
  int total = n;
  std::vector<int> slack_col(static_cast<std::size_t>(m), -1);
  std::vector<int> art_col(static_cast<std::size_t>(m), -1);
  for (int r = 0; r < m; ++r) {
    if (sense[r] != Sense::EQ) slack_col[r] = total++;
  }
  for (int r = 0; r < m; ++r) {
    if (sense[r] != Sense::LE) art_col[r] = total++;
  }

  std::vector<std::vector<double>> tab(
      static_cast<std::size_t>(m),
      std::vector<double>(static_cast<std::size_t>(total) + 1, 0.0));
  for (int c = 0; c < n; ++c) {
    for (const RowEntry& e : model.column_entries(c)) {
      tab[e.row][c] = row_sign[e.row] * e.coef;
    }
  }
  for (int r = 0; r < m; ++r) {
    if (slack_col[r] >= 0) {
      tab[r][slack_col[r]] = sense[r] == Sense::LE ? 1.0 : -1.0;
    }
    if (art_col[r] >= 0) tab[r][art_col[r]] = 1.0;
    tab[r][total] = row_sign[r] * model.row_rhs(r);
  }

  std::vector<int> basis(static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) {
    basis[r] = art_col[r] >= 0 ? art_col[r] : slack_col[r];
  }
  std::vector<bool> artificial(static_cast<std::size_t>(total), false);
  for (int r = 0; r < m; ++r) {
    if (art_col[r] >= 0) artificial[art_col[r]] = true;
  }
  const auto is_art = [&](int col) { return artificial[col]; };

  std::vector<double> cost1(static_cast<std::size_t>(total), 0.0);
  std::vector<double> cost2(static_cast<std::size_t>(total), 0.0);
  for (int r = 0; r < m; ++r) {
    if (art_col[r] >= 0) cost1[art_col[r]] = 1.0;
  }
  for (int c = 0; c < n; ++c) cost2[c] = model.column_cost(c);

  const auto pivot_at = [&](int prow, int pcol) {
    std::vector<double>& pr = tab[prow];
    const double inv = 1.0 / pr[pcol];
    for (double& v : pr) v *= inv;
    pr[pcol] = 1.0;  // exact
    for (int r = 0; r < m; ++r) {
      if (r == prow) continue;
      const double f = tab[r][pcol];
      if (std::fabs(f) < kRefTol) continue;
      for (int c = 0; c <= total; ++c) tab[r][c] -= f * pr[c];
      tab[r][pcol] = 0.0;  // exact
    }
    basis[prow] = pcol;
  };

  // One simplex phase under Bland's rule. Returns false on unboundedness.
  const auto run_phase =
      [&](const std::vector<double>& cost, bool ban_artificials) {
        const std::int64_t guard = 200000;
        for (std::int64_t iter = 0;; ++iter) {
          STRIPACK_ASSERT(iter < guard, "reference simplex did not halt");
          // Reduced costs from the current basis.
          int entering = -1;
          for (int c = 0; c < total; ++c) {
            if (ban_artificials && is_art(c)) continue;
            bool basic = false;
            for (int r = 0; r < m; ++r) basic |= basis[r] == c;
            if (basic) continue;
            double rc = cost[c];
            for (int r = 0; r < m; ++r) rc -= cost[basis[r]] * tab[r][c];
            if (rc < -1e-9) {
              entering = c;
              break;  // Bland: first improving index
            }
          }
          if (entering < 0) return true;
          // Ratio test; basic artificials with any nonzero component are
          // forced out first (keeps them pinned at zero in phase 2).
          int leave = -1;
          double best = std::numeric_limits<double>::infinity();
          bool leave_art = false;
          for (int r = 0; r < m; ++r) {
            const bool art = ban_artificials && is_art(basis[r]);
            double ratio;
            if (art && std::fabs(tab[r][entering]) > kRefTol) {
              ratio = 0.0;
            } else if (tab[r][entering] > kRefTol) {
              ratio = tab[r][total] / tab[r][entering];
            } else {
              continue;
            }
            const bool better =
                leave < 0 || ratio < best - 1e-12 ||
                (ratio < best + 1e-12 &&
                 ((art && !leave_art) ||
                  (art == leave_art && basis[r] < basis[leave])));
            if (better) {
              best = std::max(ratio, 0.0);
              leave = r;
              leave_art = art;
            }
          }
          if (leave < 0) return false;  // unbounded
          pivot_at(leave, entering);
        }
      };

  RefSolution out;
  bool has_art = false;
  for (int r = 0; r < m; ++r) has_art |= art_col[r] >= 0;
  if (has_art) {
    const bool bounded = run_phase(cost1, false);
    STRIPACK_ASSERT(bounded, "phase 1 cannot be unbounded");
    double infeasibility = 0.0;
    for (int r = 0; r < m; ++r) {
      if (is_art(basis[r])) infeasibility += tab[r][total];
    }
    if (infeasibility > 1e-7) {
      out.status = RefStatus::Infeasible;
      return out;
    }
  }
  if (!run_phase(cost2, true)) {
    out.status = RefStatus::Unbounded;
    return out;
  }
  out.x.assign(static_cast<std::size_t>(n), 0.0);
  for (int r = 0; r < m; ++r) {
    if (basis[r] < n) out.x[basis[r]] = std::max(tab[r][total], 0.0);
  }
  for (int c = 0; c < n; ++c) out.objective += cost2[c] * out.x[c];
  return out;
}

// Random LP with grid coefficients (small rational optima keep the
// status/objective comparisons far from tolerance boundaries) and mixed
// senses/signs so all of optimal, infeasible and unbounded occur.
Model random_grid_model(Rng& rng) {
  const int rows = static_cast<int>(rng.uniform_int(2, 10));
  const int cols = static_cast<int>(rng.uniform_int(1, 20));
  Model m;
  for (int r = 0; r < rows; ++r) {
    const double p = rng.uniform();
    const Sense sense =
        p < 0.45 ? Sense::LE : (p < 0.8 ? Sense::GE : Sense::EQ);
    m.add_row(sense, 0.5 * static_cast<double>(rng.uniform_int(-6, 10)));
  }
  for (int c = 0; c < cols; ++c) {
    std::vector<RowEntry> entries;
    for (int r = 0; r < rows; ++r) {
      if (!rng.bernoulli(0.5)) continue;
      const double coef = 0.25 * static_cast<double>(rng.uniform_int(-8, 8));
      if (coef != 0.0) entries.push_back({r, coef});
    }
    m.add_column(0.25 * static_cast<double>(rng.uniform_int(-4, 12)), entries);
  }
  return m;
}

struct DiffConfig {
  std::string backend;
  PricingRule rule;
  int refactor_interval;
  int threads;
};

// Every registered backend, crossed with the knobs it honors: the eta-file
// engine sweeps pricing x refactor cadence x scan threads; other backends
// (only `dense` today, but any future registration lands here too) ignore
// the pricing knobs, so they sweep refactor cadence alone under the Bland
// rule they actually implement.
std::vector<DiffConfig> all_configs() {
  std::vector<DiffConfig> configs;
  for (const std::string& backend : lp_backend_names()) {
    if (backend == kDefaultLpBackend) {
      for (const PricingRule rule :
           {PricingRule::Dantzig, PricingRule::Bland, PricingRule::SteepestEdge,
            PricingRule::Devex}) {
        for (const int interval : {1, 64, 1 << 30}) {
          configs.push_back({backend, rule, interval, 1});
        }
      }
      configs.push_back({backend, PricingRule::SteepestEdge, 64, 2});
      configs.push_back({backend, PricingRule::Devex, 64, 2});
    } else {
      for (const int interval : {1, 64, 1 << 30}) {
        configs.push_back({backend, PricingRule::Bland, interval, 1});
      }
    }
  }
  return configs;
}

std::string config_name(const ::testing::TestParamInfo<DiffConfig>& info) {
  std::string name = info.param.backend;
  if (!name.empty()) {
    name[0] = static_cast<char>(
        std::toupper(static_cast<unsigned char>(name[0])));
  }
  switch (info.param.rule) {
    case PricingRule::Dantzig:
      name += "Dantzig";
      break;
    case PricingRule::Bland:
      name += "Bland";
      break;
    case PricingRule::SteepestEdge:
      name += "SteepestEdge";
      break;
    case PricingRule::Devex:
      name += "Devex";
      break;
  }
  name += info.param.refactor_interval == 1
              ? "Eager"
              : (info.param.refactor_interval > 1000 ? "Lazy" : "Default");
  if (info.param.threads != 1) name += "Threaded";
  return name;
}

class SimplexDifferential : public ::testing::TestWithParam<DiffConfig> {};

TEST_P(SimplexDifferential, AgreesWithDenseTableauReference) {
  const DiffConfig config = GetParam();
  SimplexOptions options;
  options.pricing = config.rule;
  options.refactor_interval = config.refactor_interval;
  options.pricing_threads = config.threads;

  int optimal = 0;
  int infeasible = 0;
  int unbounded = 0;
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    Rng rng(1000 + seed);
    const Model m = random_grid_model(rng);
    const RefSolution ref = reference_solve(m);
    const Solution sol = make_lp_backend(config.backend, m, options)->solve();

    switch (ref.status) {
      case RefStatus::Infeasible:
        ++infeasible;
        EXPECT_EQ(sol.status, SolveStatus::Infeasible) << "seed=" << seed;
        continue;
      case RefStatus::Unbounded:
        ++unbounded;
        EXPECT_EQ(sol.status, SolveStatus::Unbounded) << "seed=" << seed;
        continue;
      case RefStatus::Optimal:
        ++optimal;
        break;
    }
    ASSERT_EQ(sol.status, SolveStatus::Optimal) << "seed=" << seed;
    EXPECT_NEAR(sol.objective, ref.objective,
                1e-6 * (1.0 + std::fabs(ref.objective)))
        << "seed=" << seed;
    // Primal/dual feasibility and complementary slackness, every run.
    certify_optimal_solution(m, sol);
    // Basic solution: support bounded by the row count (Lemma 3.3's
    // structural fact).
    std::size_t nonzeros = 0;
    for (const double v : sol.x) nonzeros += v > 1e-6;
    EXPECT_LE(nonzeros, static_cast<std::size_t>(m.num_rows()))
        << "seed=" << seed;
  }
  // The generator must actually exercise all three outcomes.
  EXPECT_GT(optimal, 100);
  EXPECT_GT(infeasible, 20);
  EXPECT_GT(unbounded, 20);
}

INSTANTIATE_TEST_SUITE_P(BackendRegistry, SimplexDifferential,
                         ::testing::ValuesIn(all_configs()), config_name);

// A wide model on which *every* column prices negative at the start (all
// costs negative, LE capacity rows): the first partial-pricing drought
// block (limit/8 > 8192 columns here) floods the candidate list past the
// parallel-scan threshold, so Dantzig's threaded revalidation path — not
// just the steepest-edge full scan — genuinely executes.
Model wide_profitable_model(Rng& rng, int rows, int cols) {
  Model m;
  for (int r = 0; r < rows; ++r) m.add_row(Sense::LE, rng.uniform(2.0, 6.0));
  for (int c = 0; c < cols; ++c) {
    std::vector<RowEntry> entries;
    for (int r = 0; r < rows; ++r) {
      if (rng.bernoulli(0.4)) entries.push_back({r, rng.uniform(0.1, 2.0)});
    }
    if (entries.empty()) entries.push_back({0, 1.0});
    m.add_column(-rng.uniform(0.5, 3.0), entries);
  }
  return m;
}

TEST(SimplexParallelPricing, ThreadedScansReproduceTheSerialPivotSequence) {
  // Models wide enough that the chunked parallel scans actually engage
  // (see kParallelScanMin): they must replicate the serial tie-breaks
  // exactly, so iteration counts and bases — not just objectives — match.
  for (const PricingRule rule :
       {PricingRule::Dantzig, PricingRule::SteepestEdge,
        PricingRule::Devex}) {
    Rng rng(4242);
    const Model m = rule == PricingRule::Dantzig
                        ? wide_profitable_model(rng, 16, 120000)
                        : random_covering_model(rng, 24, 10000);
    SimplexOptions serial;
    serial.pricing = rule;
    serial.pricing_threads = 1;
    SimplexOptions threaded = serial;
    threaded.pricing_threads = 4;
    SimplexOptions negative = serial;
    negative.pricing_threads = -3;  // documented: negative means serial
    const Solution a = solve(m, serial);
    const Solution b = solve(m, threaded);
    const Solution c = solve(m, negative);
    ASSERT_EQ(a.status, b.status);
    ASSERT_TRUE(a.optimal());
    certify_optimal_solution(m, a);
    certify_optimal_solution(m, b);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_NEAR(a.objective, b.objective, 1e-9);
    EXPECT_EQ(a.basis, b.basis);
    EXPECT_EQ(a.iterations, c.iterations);
    EXPECT_EQ(a.basis, c.basis);
  }
}

TEST(SimplexSteepestEdge, CutsPivotsOnWideDegenerateModels) {
  // The whole point of steepest edge: far fewer pivots than Dantzig on
  // wide, degenerate covering models. Exact counts are machine-stable
  // (deterministic solver), so assert the direction of the effect.
  Rng rng(9001);
  const Model m = random_covering_model(rng, 40, 4000);
  SimplexOptions dantzig;
  dantzig.pricing = PricingRule::Dantzig;
  SimplexOptions steepest;
  steepest.pricing = PricingRule::SteepestEdge;
  const Solution a = solve(m, dantzig);
  const Solution b = solve(m, steepest);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_NEAR(a.objective, b.objective, 1e-6 * (1.0 + std::fabs(a.objective)));
  EXPECT_LT(b.iterations, a.iterations);
  // Devex approximates the steepest-edge pivot counts at roughly half
  // the scan cost per pivot: it must land well below Dantzig too.
  SimplexOptions devex;
  devex.pricing = PricingRule::Devex;
  const Solution c = solve(m, devex);
  ASSERT_TRUE(c.optimal());
  EXPECT_NEAR(a.objective, c.objective, 1e-6 * (1.0 + std::fabs(a.objective)));
  EXPECT_LT(c.iterations, a.iterations);
}

}  // namespace
}  // namespace stripack::lp
