#include "binpack/precedence_binpack.hpp"

#include <gtest/gtest.h>

#include "gen/dag_gen.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace stripack::binpack {
namespace {

TEST(PrecBinPack, EmptyInput) {
  const Dag dag(0);
  EXPECT_EQ(ready_queue_next_fit({}, dag, 1.0).assignment.num_bins(), 0u);
  EXPECT_EQ(exact_min_bins_precedence({}, dag, 1.0), 0u);
}

TEST(PrecBinPack, ChainForcesOneItemPerBin) {
  const Dag dag = gen::chain_dag(4);
  const std::vector<double> sizes(4, 0.1);
  for (auto* fn : {ready_queue_next_fit, first_fit_available, ffd_available}) {
    const auto result = fn(sizes, dag, 1.0);
    EXPECT_EQ(result.assignment.num_bins(), 4u);
    EXPECT_TRUE(is_valid_precedence(result.assignment, sizes, dag, 1.0));
  }
  EXPECT_EQ(exact_min_bins_precedence(sizes, dag, 1.0), 4u);
  EXPECT_EQ(lb_precedence(sizes, dag, 1.0), 4u);
}

TEST(PrecBinPack, IndependentItemsPackDensely) {
  const Dag dag(4);
  const std::vector<double> sizes{0.5, 0.5, 0.5, 0.5};
  const auto result = ready_queue_next_fit(sizes, dag, 1.0);
  EXPECT_EQ(result.assignment.num_bins(), 2u);
  // Only the final bin closes with an empty queue.
  EXPECT_EQ(result.skips, 1u);
}

TEST(PrecBinPack, SkipHappensWhenQueueEmpties) {
  // 0 -> 1: after bin 1 closes with {0}, item 1 becomes available. Placing
  // 0 leaves the queue empty while the bin has room: closing it is a skip.
  Dag dag(2);
  dag.add_edge(0, 1);
  const std::vector<double> sizes{0.2, 0.2};
  const auto result = ready_queue_next_fit(sizes, dag, 1.0);
  EXPECT_EQ(result.assignment.num_bins(), 2u);
  EXPECT_EQ(result.skips, 2u);  // the chain skip plus the final bin
  EXPECT_TRUE(is_valid_precedence(result.assignment, sizes, dag, 1.0));
}

TEST(PrecBinPack, PredecessorStrictlyEarlierIsEnforced) {
  Dag dag(3);
  dag.add_edge(0, 2);
  const std::vector<double> sizes{0.3, 0.3, 0.3};
  for (auto* fn : {ready_queue_next_fit, first_fit_available, ffd_available}) {
    const auto result = fn(sizes, dag, 1.0);
    const auto owner = result.assignment.item_to_bin(3);
    EXPECT_LT(owner[0], owner[2]);
  }
}

TEST(PrecBinPack, FfdAvailablePrefersLargeItems) {
  // All available: FFD should place 0.6 before 0.5 before 0.3, producing
  // bins {0.6,0.3},{0.5} rather than NF's order-dependent result.
  const Dag dag(3);
  const std::vector<double> sizes{0.3, 0.6, 0.5};
  const auto result = ffd_available(sizes, dag, 1.0);
  EXPECT_EQ(result.assignment.num_bins(), 2u);
  const auto owner = result.assignment.item_to_bin(3);
  EXPECT_EQ(owner[1], owner[0]);  // 0.6 with 0.3
}

TEST(PrecBinPack, ExactHandlesDiamond) {
  Dag dag(4);
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  dag.add_edge(1, 3);
  dag.add_edge(2, 3);
  const std::vector<double> sizes{0.4, 0.4, 0.4, 0.4};
  // 0 | {1,2} | 3 -> 3 bins, and no better is possible (path length 3).
  EXPECT_EQ(exact_min_bins_precedence(sizes, dag, 1.0), 3u);
}

TEST(PrecBinPack, ExactPairsIndependentChains) {
  // Two independent chains 0->1 and 2->3 of half-size items: the optimum
  // runs them in lockstep, {0,2} then {1,3}.
  Dag dag(4);
  dag.add_edge(0, 1);
  dag.add_edge(2, 3);
  const std::vector<double> sizes{0.4, 0.4, 0.4, 0.4};
  EXPECT_EQ(exact_min_bins_precedence(sizes, dag, 1.0), 2u);
}

TEST(PrecBinPack, ValidityCheckerCatchesBadOrder) {
  Dag dag(2);
  dag.add_edge(0, 1);
  const std::vector<double> sizes{0.3, 0.3};
  BinAssignment same_bin;
  same_bin.bins = {{0, 1}};
  EXPECT_FALSE(is_valid_precedence(same_bin, sizes, dag, 1.0));
  BinAssignment reversed;
  reversed.bins = {{1}, {0}};
  EXPECT_FALSE(is_valid_precedence(reversed, sizes, dag, 1.0));
  BinAssignment good;
  good.bins = {{0}, {1}};
  EXPECT_TRUE(is_valid_precedence(good, sizes, dag, 1.0));
}

// Random sweeps: heuristics valid; exact <= heuristics; lb <= exact.
struct PrecSweep {
  std::uint64_t seed;
  double edge_prob;
};

class PrecBinPackSweep : public ::testing::TestWithParam<PrecSweep> {};

TEST_P(PrecBinPackSweep, HeuristicsSandwichedByBounds) {
  Rng rng(GetParam().seed);
  const std::size_t n = 11;
  const Dag dag = gen::gnp_dag(n, GetParam().edge_prob, rng);
  std::vector<double> sizes;
  for (std::size_t i = 0; i < n; ++i) sizes.push_back(rng.uniform(0.1, 0.9));

  const std::size_t opt = exact_min_bins_precedence(sizes, dag, 1.0);
  EXPECT_LE(lb_precedence(sizes, dag, 1.0), opt);

  for (auto* fn : {ready_queue_next_fit, first_fit_available, ffd_available}) {
    const auto result = fn(sizes, dag, 1.0);
    EXPECT_TRUE(is_valid_precedence(result.assignment, sizes, dag, 1.0));
    EXPECT_GE(result.assignment.num_bins(), opt);
  }

  // Theorem 2.6 transfers: ready-queue NF uses at most 3*OPT bins (the
  // +O(1) slack of the shelf accounting shows up only at tiny sizes, so we
  // allow +1 here).
  const auto nf = ready_queue_next_fit(sizes, dag, 1.0);
  EXPECT_LE(nf.assignment.num_bins(), 3 * opt + 1);
  // Lemma 2.5: skips <= OPT.
  EXPECT_LE(nf.skips, opt);
}

std::vector<PrecSweep> prec_sweeps() {
  std::vector<PrecSweep> out;
  for (std::uint64_t seed : {2u, 4u, 6u, 8u}) {
    for (double p : {0.0, 0.15, 0.4}) out.push_back({seed, p});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrecBinPackSweep,
                         ::testing::ValuesIn(prec_sweeps()));

}  // namespace
}  // namespace stripack::binpack
