// Smoke test for the umbrella header: includes ONLY src/stripack.hpp and
// exercises one entry point per module under src/. If a public header is
// dropped from the umbrella (or a module's API breaks), this file stops
// compiling, so the umbrella stays an accurate export of the library.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <sstream>
#include <thread>

#include "stripack.hpp"

namespace stripack {
namespace {

Instance small_precedence_instance() {
  Instance ins;
  const VertexId a = ins.add_item(0.5, 1.0);
  const VertexId b = ins.add_item(0.25, 0.5);
  ins.add_precedence(a, b);
  return ins;
}

// core: instance accessors, bounds, validate on a trivial placement.
TEST(Umbrella, Core) {
  const Instance ins = small_precedence_instance();
  EXPECT_EQ(ins.size(), 2u);
  EXPECT_GT(area_lower_bound(ins), 0.0);
  EXPECT_GE(critical_path_lower_bound(ins), 1.5);

  Placement stacked{{0.0, 0.0}, {0.0, 1.0}};
  EXPECT_TRUE(validate(ins, stacked).ok());
  EXPECT_DOUBLE_EQ(packing_height(ins, stacked), 1.5);
}

// dag: edge construction and cycle rejection.
TEST(Umbrella, Dag) {
  Dag dag(3);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  EXPECT_EQ(dag.num_edges(), 2u);
  EXPECT_TRUE(dag.has_edge(0, 1));
  const std::vector<Edge> cyclic{{0, 1}, {1, 0}};
  EXPECT_FALSE(Dag::from_edges(2, cyclic).has_value());
}

// packers: every registered packer places every rectangle.
TEST(Umbrella, Packers) {
  const std::vector<Rect> rects{{0.5, 1.0}, {0.5, 0.5}, {0.25, 0.75}};
  for (const auto& packer : all_packers()) {
    const PackResult result = packer->pack(rects, 1.0);
    EXPECT_EQ(result.placement.size(), rects.size());
    EXPECT_GE(result.height, 1.0);
  }
}

// precedence: §2 dc_pack respects the DAG and the Theorem 2.3 bound.
TEST(Umbrella, PrecedenceDc) {
  const Instance ins = small_precedence_instance();
  const DcResult result = dc_pack(ins);
  EXPECT_TRUE(validate(ins, result.packing.placement).ok());
  EXPECT_LE(result.packing.height(), result.theorem23_bound);
}

// precedence: §2.2 uniform_shelf_pack on uniform heights.
TEST(Umbrella, PrecedenceUniformShelf) {
  Instance ins;
  const VertexId a = ins.add_item(0.5, 1.0);
  const VertexId b = ins.add_item(0.5, 1.0);
  ins.add_precedence(a, b);
  const UniformShelfResult result = uniform_shelf_pack(ins);
  EXPECT_TRUE(validate(ins, result.packing.placement).ok());
}

// release: §3 APTAS end to end on a tiny release-time instance.
TEST(Umbrella, ReleaseAptas) {
  Instance ins;
  ins.add_item(0.5, 1.0, /*release=*/0.0);
  ins.add_item(0.5, 0.5, /*release=*/0.5);
  ins.add_item(0.25, 0.75, /*release=*/1.0);
  release::AptasParams params;
  params.epsilon = 1.0;
  const release::AptasResult result = release::aptas_pack(ins, params);
  EXPECT_TRUE(validate(ins, result.packing.placement).ok());
  EXPECT_GT(result.height, 0.0);
  // Lemma 3.1 rounding is reachable through the umbrella too.
  EXPECT_EQ(release::count_distinct_releases(ins), 3u);
}

// bnp: branch and price certifies the hard_integral gap family, the node
// tree is reachable directly, and the registry knows the "BnP" adapter.
TEST(Umbrella, BranchAndPrice) {
  const gen::HardIntegralInstance family = gen::hard_integral_family(1);
  const bnp::BnpResult result = bnp::solve(family.instance);
  EXPECT_EQ(result.status, bnp::BnpStatus::Optimal);
  EXPECT_NEAR(result.height, family.certificate.ip_height, 1e-6);
  EXPECT_NEAR(result.dual_bound, result.height, 1e-6);
  EXPECT_TRUE(validate(family.instance, result.packing.placement).ok());

  bnp::NodeTree tree;
  tree.add_root(1.0);
  EXPECT_EQ(tree.pop_best(), 0);

  // PR 5 scaling units: the pattern cache and the batch worker pool.
  bnp::PricingCache cache;
  const std::vector<int> counts{1, 0};
  EXPECT_EQ(cache.insert(counts, 0.4), 0);
  EXPECT_EQ(cache.size(), 1u);
  bnp::BnpWorkerPool workers(2);
  EXPECT_EQ(workers.threads(), 2);
  bnp::BnpOptions batched;
  batched.threads = 2;
  batched.node_batch = 4;
  const bnp::BnpResult parallel = bnp::solve(family.instance, batched);
  EXPECT_EQ(parallel.status, bnp::BnpStatus::Optimal);
  EXPECT_NEAR(parallel.height, result.height, 1e-6);

  // PR 9 conflict-learning units: the nogood store and the propagator
  // are reachable through the umbrella.
  bnp::conflicts::NogoodStore store;
  release::BranchPredicate pred;
  pred.kind = release::BranchPredicate::Kind::PairTogether;
  pred.width_a = 0;
  pred.width_b = 1;
  EXPECT_TRUE(store.learn(
      {bnp::conflicts::BranchLiteral{pred, lp::Sense::GE, 1.0}}));
  EXPECT_EQ(store.size(), 1u);
  const auto problem = release::make_problem(family.instance);
  const bnp::conflicts::Propagator propagator(problem);
  std::vector<bnp::conflicts::BranchLiteral> lits = {
      {pred, lp::Sense::GE, 1.0}, {pred, lp::Sense::LE, 0.0}};
  bnp::conflicts::NogoodStore::canonicalize(lits);
  EXPECT_TRUE(propagator.propagate(lits).infeasible);

  const auto packer = make_packer("BnP");
  ASSERT_NE(packer, nullptr);
  EXPECT_EQ(packer->name(), "BnP");
}

// binpack: first-fit decreasing respects capacity.
TEST(Umbrella, Binpack) {
  const std::vector<double> sizes{0.6, 0.5, 0.4, 0.3, 0.2};
  const binpack::BinAssignment assignment =
      binpack::pack_decreasing(sizes, 1.0, binpack::Fit::FirstFit);
  EXPECT_TRUE(binpack::is_valid(assignment, sizes, 1.0));
  EXPECT_GE(assignment.num_bins(), binpack::lb_size(sizes, 1.0));
}

// lp: two-phase simplex on a 1-row model.
TEST(Umbrella, Lp) {
  lp::Model model;
  const int row = model.add_row(lp::Sense::GE, 1.0);
  const lp::RowEntry entry{row, 1.0};
  model.add_column(2.0, std::span<const lp::RowEntry>(&entry, 1));
  const lp::Solution solution = lp::solve(model);
  ASSERT_TRUE(solution.optimal());
  EXPECT_DOUBLE_EQ(solution.objective, 2.0);

  // PR 6 seam: the backend registry, the dense reference backend, and the
  // portfolio are all reachable through the umbrella.
  EXPECT_TRUE(lp::has_lp_backend(lp::kDefaultLpBackend));
  EXPECT_TRUE(lp::has_lp_backend("dense"));
  const lp::Solution dense =
      lp::make_lp_backend("dense", model, lp::SimplexOptions{})->solve();
  ASSERT_TRUE(dense.optimal());
  EXPECT_DOUBLE_EQ(dense.objective, 2.0);
  lp::DenseTableauBackend direct(model, {});
  EXPECT_STREQ(direct.name(), "dense");
  lp::PortfolioOptions race;
  race.mode = lp::PortfolioMode::Race;
  const lp::PortfolioResult raced = lp::portfolio_solve(model, race);
  ASSERT_GE(raced.winner, 0);
  EXPECT_DOUBLE_EQ(raced.solution.objective, 2.0);
}

// kr: Kenyon–Rémila APTAS for plain strip packing.
TEST(Umbrella, Kr) {
  const Instance ins(
      {Item{Rect{0.5, 1.0}, 0.0}, Item{Rect{0.5, 0.5}, 0.0},
       Item{Rect{0.25, 0.75}, 0.0}});
  const kr::KrResult result = kr::kr_pack(ins);
  EXPECT_TRUE(validate(ins, result.packing.placement).ok());
}

// fpga: the §1 reduction from tasks on a column device to a strip instance.
TEST(Umbrella, Fpga) {
  const fpga::TaskSet set = fpga::jpeg_pipeline(/*stripes=*/1);
  const fpga::Device device{/*columns=*/16};
  const Instance ins = fpga::to_instance(set, device);
  EXPECT_EQ(ins.size(), set.size());
  EXPECT_TRUE(ins.has_precedence());
}

// gen: rectangle and DAG generators are deterministic under a seed.
TEST(Umbrella, Gen) {
  Rng rng(42);
  const auto rects = gen::random_rects(8, gen::RectParams{}, rng);
  EXPECT_EQ(rects.size(), 8u);
  const Dag chain = gen::chain_dag(5);
  EXPECT_EQ(chain.num_edges(), 4u);
  const gen::FamilyInstance family = gen::lemma24_family(2, 0.25);
  EXPECT_FALSE(family.instance.empty());
}

// io: text round-trip of an instance through a stream.
TEST(Umbrella, Io) {
  const Instance ins = small_precedence_instance();
  std::stringstream stream;
  io::write_instance(stream, ins);
  const Instance back = io::read_instance(stream);
  EXPECT_EQ(back.size(), ins.size());
  EXPECT_TRUE(back.has_precedence());
  EXPECT_FALSE(io::to_svg(ins, Placement{{0.0, 0.0}, {0.0, 1.0}}).empty());
}

// service: PR 8 — canonicalization, the warm-pooled solver service and
// its wire format are all reachable through the umbrella.
TEST(Umbrella, Service) {
  const Instance ins({Item{Rect{4.0, 2.0}, 0.0}, Item{Rect{6.0, 2.0}, 0.0}},
                     10.0);
  const service::CanonicalRequest canonical = service::canonicalize(ins);
  EXPECT_EQ(canonical.instance.size(), ins.size());
  EXPECT_DOUBLE_EQ(canonical.scale, 10.0);
  EXPECT_FALSE(canonical.key.empty());
  EXPECT_FALSE(canonical.class_signature.empty());

  service::SolverService svc;
  (void)svc.enqueue(ins);
  (void)svc.enqueue(ins);  // identical: the second must hit the cache
  const std::vector<service::ServiceResponse> responses = svc.run();
  ASSERT_EQ(responses.size(), 2u);
  ASSERT_TRUE(responses[0].ok) << responses[0].error;
  EXPECT_EQ(responses[0].status, bnp::BnpStatus::Optimal);
  EXPECT_TRUE(responses[1].cache_hit);
  EXPECT_TRUE(validate(ins, responses[0].placement).ok());
  EXPECT_EQ(svc.stats().requests, 2u);
  std::ostringstream wire;
  service::SolverService::write_response(wire, responses[0]);
  EXPECT_NE(wire.str().find("stripack-response v1"), std::string::npos);

  // util/parse_num rides along in PR 8: the checked CLI parsers.
  int value = 0;
  EXPECT_TRUE(util::parse_int("17", value));
  EXPECT_EQ(value, 17);
  EXPECT_FALSE(util::parse_int("17q", value));
}

// service/net + util/net: PR 10 — the TCP front end, its frame codec,
// client helper, timer wheel and the connection-fault dimension are all
// reachable through the umbrella.
TEST(Umbrella, ServiceNet) {
  const std::string frame = util::encode_frame("ping");
  EXPECT_EQ(frame.size(), util::kFrameHeaderBytes + 4);
  std::array<char, util::kFrameHeaderBytes> header{};
  std::copy(frame.begin(), frame.begin() + util::kFrameHeaderBytes,
            header.begin());
  std::uint32_t len = 0;
  ASSERT_TRUE(util::decode_frame_header(header, len));
  EXPECT_EQ(len, 4u);

  service::net::TimerWheel wheel;
  wheel.arm(1, service::net::TimerWheel::Clock::now());
  EXPECT_TRUE(wheel.is_armed(1));

  const ConnFaultPlan conn_plan = ConnFaultPlan::random(11, 2, 20);
  ASSERT_EQ(conn_plan.events.size(), 2u);
  EXPECT_EQ(conn_plan.events[0].at,
            ConnFaultPlan::random(11, 2, 20).events[0].at);

  service::net::ServerOptions server_options;
  server_options.service.node_budget = 16;
  service::net::StripackServer server(server_options);
  const std::uint16_t port = server.start();
  EXPECT_GT(port, 0);
  std::thread loop([&] { EXPECT_TRUE(server.run()); });
  service::net::ClientOptions client_options;
  client_options.port = port;
  service::net::FrameClient client(client_options);
  std::ostringstream request;
  io::write_instance(
      request,
      Instance({Item{Rect{4.0, 2.0}, 0.0}, Item{Rect{6.0, 2.0}, 0.0}},
               10.0));
  const service::net::ClientResult reply = client.request(request.str());
  ASSERT_TRUE(reply.ok) << reply.error;
  EXPECT_NE(reply.body.find("stripack-response v1"), std::string::npos);
  server.request_drain();
  loop.join();
  EXPECT_EQ(server.stats().responses, 1u);
}

// util: rng, float comparisons, tables, parallel_for, stopwatch.
TEST(Umbrella, Util) {
  Rng rng(7);
  const double u = rng.uniform();
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
  EXPECT_TRUE(approx_eq(0.1 + 0.2, 0.3));
  EXPECT_EQ(format_double(1.25, 2), "1.25");
  std::vector<int> hits(16, 0);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i] = 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
  ThreadPool pool(2);
  std::vector<int> pooled(16, 0);
  pool.run(pooled.size(), [&](std::size_t i) { pooled[i] = 1; });
  for (const int h : pooled) EXPECT_EQ(h, 1);
  const Stopwatch watch;
  EXPECT_GE(watch.seconds(), 0.0);
  // util/fault_injection through the umbrella: a seeded plan is
  // deterministic, and an installed injector fires it exactly once.
  const FaultPlan plan = FaultPlan::random(11, 2, 20);
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].at, FaultPlan::random(11, 2, 20).events[0].at);
  FaultInjector injector({{{FaultSite::Pivot, 1, FaultAction::TripStop}}});
  EXPECT_EQ(injector.poll(FaultSite::Pivot), FaultAction::TripStop);
  EXPECT_EQ(injector.poll(FaultSite::Pivot), FaultAction::None);
  EXPECT_EQ(injector.fired(), 1u);
}

}  // namespace
}  // namespace stripack
